// ASSURE-style constant locking (after Pilato et al., "ASSURE: RTL Locking
// Against an Untrusted Foundry"), lowered onto the gate-level netlist.
//
// ASSURE hides the constants of a design behind key bits. At gate level
// that means two moves, both expressed with the attacker-view ternary
// propagation the lint audit uses (TernarySimulator with unknown LUTs):
//
//  * convert: any gate whose output is *statically constant* under all-X
//    inputs is rewritten in place into a key-fed LUT configured to that
//    constant. The LUT keeps one live donor fan-in, so to the foundry it
//    is an ordinary unconfigured LUT1 and the constant's value — and the
//    fact that the cone was constant at all — moves into the key. The now
//    disconnected constant cone is stripped.
//  * inject: on sampled live edges d -> v, a key-fed constant lc (LUT1
//    configured to 0) is planted together with x = XOR(d, lc), and v is
//    rewired to x. With the correct key XOR(d, 0) = d; a wrong
//    configuration turns x into NOT d or constant 0. This covers
//    synthesized benchmarks whose constants were already folded away.
#include <sstream>

#include "defense/registry.hpp"
#include "netlist/cleanup.hpp"
#include "sim/ternary.hpp"
#include "util/rng.hpp"

namespace stt::defense {

namespace {

/// All-X attacker-view wave over the combinational fabric.
std::vector<Tri> all_x_wave(const Netlist& nl) {
  const TernarySimulator tsim(nl, /*lut_unknown=*/true);
  const std::vector<Tri> pi(nl.inputs().size(), Tri::kX);
  const std::vector<Tri> ff(nl.dffs().size(), Tri::kX);
  return tsim.eval_comb(pi, ff);
}

bool definite(Tri t) { return t != Tri::kX; }

class ConstLock final : public DefenseBase {
 public:
  std::string_view kind() const override { return "const"; }

  std::string_view description() const override {
    return "ASSURE-style constant locking (convert constant cones, inject "
           "key-fed constants)";
  }

  std::vector<TuningKnob> knobs() const override {
    return {{"convert", "1", "rewrite statically-constant gates into key LUTs"},
            {"inject", "8", "key-fed XOR-with-0 constants to plant on live "
                            "edges (clamped to edge count)"}};
  }

  DefenseResult apply(const Netlist& original, const TechLibrary& lib,
                      const DefenseOptions& opt,
                      const Tuning& tuning) const override {
    bool convert = true;
    int inject = 8;
    for (const auto& [k, v] : tuning) {
      if (k == "convert") {
        convert = (v == "1" || v == "true");
      } else if (k == "inject") {
        inject = parse_int(kind(), k, v);
      } else {
        bad_tuning(kind(), k);
      }
    }
    if (inject < 0) {
      throw std::invalid_argument(
          "defense \"const\": inject must be non-negative");
    }

    DefenseResult r;
    r.locked = strip_dead_logic(original);

    if (convert) convert_constant_gates(r);
    if (inject > 0) inject_constants(r, inject, opt.seed);
    if (r.key.empty()) {
      throw std::invalid_argument(
          "defense \"const\": nothing to lock (no constant cones and "
          "inject=0)");
    }
    r.locked.check();

    finish(r, original, lib, opt);
    std::ostringstream d;
    d << r.cells_replaced << " constant gates converted, "
      << r.annotations.locked_constants.size() - r.cells_replaced
      << " injected";
    r.detail = d.str();
    return r;
  }

 private:
  void convert_constant_gates(DefenseResult& r) const {
    Netlist& work = r.locked;
    const std::vector<Tri> wave = all_x_wave(work);
    int converted = 0;
    for (CellId id = 0; id < work.size(); ++id) {
      const Cell& c = work.cell(id);
      if (!is_replaceable_gate(c.kind) || c.kind == CellKind::kLut) continue;
      if (!definite(wave[id])) continue;
      // Keep only constants that stay observable: output drivers, or gates
      // with a reader the conversion pass leaves alive (an X-wave gate or a
      // flip-flop D pin). Constants read solely by other converted
      // constants go dead and are stripped instead of locked.
      bool observable = c.is_output;
      for (const CellId reader : c.fanouts) {
        if (!definite(wave[reader])) observable = true;
      }
      if (!observable) continue;
      // The donor fan-in keeps the LUT looking live to the foundry; prefer
      // a genuinely unknown driver, fall back to a primary input.
      CellId donor = kNullCell;
      for (const CellId fin : c.fanins) {
        if (!definite(wave[fin])) {
          donor = fin;
          break;
        }
      }
      if (donor == kNullCell && !work.inputs().empty()) {
        donor = work.inputs()[0];
      }
      if (donor == kNullCell) continue;
      const std::uint64_t mask = wave[id] == Tri::kOne ? full_mask(1) : 0;
      work.connect(id, {donor});
      Cell& mc = work.cell(id);
      mc.kind = CellKind::kLut;
      mc.lut_mask = mask;
      const std::string mc_name(mc.name);
      r.key[mc_name] = mask;
      r.annotations.locked_constants.insert(mc_name);
      ++converted;
    }
    if (converted == 0) return;
    r.cells_replaced += converted;
    // Drop the disconnected constant cones; conversions that went dead
    // anyway (all their readers were converted away) leave the key too.
    work = strip_dead_logic(work);
    for (auto it = r.key.begin(); it != r.key.end();) {
      if (work.find(it->first) == kNullCell) {
        r.annotations.locked_constants.erase(it->first);
        --r.cells_replaced;
        it = r.key.erase(it);
      } else {
        ++it;
      }
    }
  }

  void inject_constants(DefenseResult& r, int inject,
                        std::uint64_t seed) const {
    Netlist& work = r.locked;
    const std::vector<Tri> wave = all_x_wave(work);
    struct Site {
      CellId cell;
      std::size_t slot;
    };
    // Prefer flip-flop D-pin edges: a mis-keyed constant there corrupts the
    // next state on every cycle, so the lock is never functionally vacuous
    // (an arbitrary gate input can be masked by a biased sibling input).
    // Combinational-only netlists fall back to all live edges.
    std::vector<Site> sites;
    const auto collect = [&](bool dff_pins_only) {
      for (CellId id = 0; id < work.size(); ++id) {
        const Cell& c = work.cell(id);
        if (dff_pins_only && c.kind != CellKind::kDff) continue;
        for (std::size_t slot = 0; slot < c.fanins.size(); ++slot) {
          if (definite(wave[c.fanins[slot]])) continue;
          sites.push_back({id, slot});
        }
      }
    };
    collect(/*dff_pins_only=*/true);
    if (sites.empty()) collect(/*dff_pins_only=*/false);
    if (sites.empty()) return;
    Rng rng(seed);
    const std::vector<Site> chosen = rng.sample(
        std::span<const Site>(sites), static_cast<std::size_t>(inject));
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const Site site = chosen[i];
      const CellId driver = work.cell(site.cell).fanins[site.slot];
      const std::string name =
          unique_name(work, "lc" + std::to_string(i), {"_x"});
      const CellId lc = work.add_lut(name, {driver}, 0);
      const CellId x =
          work.add_gate(CellKind::kXor, name + "_x", {driver, lc});
      work.replace_fanin(site.cell, site.slot, x);
      r.key[name] = 0;
      r.annotations.locked_constants.insert(name);
      r.cells_added += 2;
    }
  }
};

}  // namespace

std::unique_ptr<DefenseBase> make_const_lock() {
  return std::make_unique<ConstLock>();
}

}  // namespace stt::defense
