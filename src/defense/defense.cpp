#include "defense/defense.hpp"

#include <stdexcept>

#include "core/similarity.hpp"
#include "util/strings.hpp"

namespace stt::defense {

void DefenseBase::finish(DefenseResult& r, const Netlist& original,
                         const TechLibrary& lib, const DefenseOptions& opt) {
  r.overhead = compare_overhead(original, r.locked, lib, opt.activity);
  r.security = security_report(r.locked, SimilarityModel::paper());
  count_key(r);
}

void DefenseBase::count_key(DefenseResult& r) {
  r.key_cells = static_cast<int>(r.key.size());
  r.key_bits = 0;
  for (const auto& [name, mask] : r.key) {
    (void)mask;
    const CellId id = r.locked.find(name);
    if (id == kNullCell) {
      throw std::runtime_error("defense: key names missing cell '" + name +
                               "'");
    }
    r.key_bits += static_cast<int>(num_rows(r.locked.cell(id).fanin_count()));
  }
}

std::string DefenseBase::unique_name(const Netlist& nl,
                                     const std::string& base,
                                     const std::vector<std::string>& suffixes) {
  const auto free = [&](const std::string& candidate) {
    if (nl.find(candidate) != kNullCell) return false;
    for (const std::string& suffix : suffixes) {
      if (nl.find(candidate + suffix) != kNullCell) return false;
    }
    return true;
  };
  if (free(base)) return base;
  for (int n = 2;; ++n) {
    const std::string candidate = base + "_" + std::to_string(n);
    if (free(candidate)) return candidate;
  }
}

void DefenseBase::bad_tuning(std::string_view kind, const std::string& key) {
  throw std::invalid_argument("defense registry: unknown tuning key \"" + key +
                              "\" for defense \"" + std::string(kind) + "\"");
}

int DefenseBase::parse_int(std::string_view kind, const std::string& key,
                           const std::string& value) {
  try {
    std::size_t used = 0;
    const int v = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("defense \"" + std::string(kind) +
                                "\": tuning key \"" + key +
                                "\" needs an integer, got \"" + value + "\"");
  }
}

double DefenseBase::parse_double(std::string_view kind, const std::string& key,
                                 const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("defense \"" + std::string(kind) +
                                "\": tuning key \"" + key +
                                "\" needs a number, got \"" + value + "\"");
  }
}

}  // namespace stt::defense
