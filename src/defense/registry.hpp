// String-keyed catalogue of every registered defense, mirroring
// attack::registry(). Campaigns and the CLI resolve defenses by kind:
//
//   const auto& d = defense::registry();
//   defense::DefenseResult r = d.apply("xor", nl, lib, {.seed = 3},
//                                      {{"count", "24"}});
//
// Registered kinds:
//   independent / dependent / parametric  — the paper's three STT selection
//       algorithms, adapted over run_secure_flow (bit-identical to a direct
//       call with the same options);
//   xor    — XOR/XNOR key-gate insertion (EPIC-style random logic locking);
//   latch  — decoy-latch locking on timing-path segments (Sweeney et al.);
//   const  — ASSURE-style constant locking (Pilato et al.).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "defense/defense.hpp"

namespace stt::defense {

class Registry {
 public:
  Registry();

  /// Registered kinds, sorted (deterministic listing order).
  std::vector<std::string> names() const;

  bool contains(std::string_view kind) const;

  /// Look up a defense; throws std::invalid_argument listing the valid
  /// kinds when `kind` is unknown.
  const DefenseBase& at(std::string_view kind) const;

  /// Resolve and run a defense under an observability span, stamping
  /// `defense` and `elapsed_s` on the result.
  DefenseResult apply(std::string_view kind, const Netlist& original,
                      const TechLibrary& lib, const DefenseOptions& opt = {},
                      const Tuning& tuning = {}) const;

 private:
  std::map<std::string, std::unique_ptr<DefenseBase>, std::less<>> defenses_;
};

/// The process-wide registry (immutable after construction, thread-safe).
const Registry& registry();

// Factories, one per translation unit (see paper.cpp / xor_lock.cpp /
// latch_lock.cpp / const_lock.cpp).
std::unique_ptr<DefenseBase> make_paper_defense(SelectionAlgorithm alg);
std::unique_ptr<DefenseBase> make_xor_lock();
std::unique_ptr<DefenseBase> make_latch_lock();
std::unique_ptr<DefenseBase> make_const_lock();

}  // namespace stt::defense
