// The paper's three STT selection algorithms as registry defenses.
//
// Each adapter is a thin shim over run_secure_flow with the algorithm
// pinned; given the same seed/timing-margin/activity it produces the
// bit-identical hybrid netlist, key, overhead and security reports as a
// direct call (pinned by DefenseAdaptersMatchDirectFlow in
// tests/defense_test.cpp), so pre-registry campaign rows are reproducible
// through the registry path.
#include <sstream>

#include "core/flow.hpp"
#include "defense/registry.hpp"

namespace stt::defense {

namespace {

class PaperDefense final : public DefenseBase {
 public:
  explicit PaperDefense(SelectionAlgorithm alg) : alg_(alg) {}

  std::string_view kind() const override {
    switch (alg_) {
      case SelectionAlgorithm::kIndependent: return "independent";
      case SelectionAlgorithm::kDependent: return "dependent";
      case SelectionAlgorithm::kParametric: return "parametric";
    }
    return "parametric";
  }

  std::string_view description() const override {
    switch (alg_) {
      case SelectionAlgorithm::kIndependent:
        return "paper IV-A.1: random independent STT-LUT replacement";
      case SelectionAlgorithm::kDependent:
        return "paper IV-A.2: full timing-path dependent replacement";
      case SelectionAlgorithm::kParametric:
        return "paper IV-A.3: parametric-aware dependent replacement";
    }
    return "";
  }

  std::vector<TuningKnob> knobs() const override {
    switch (alg_) {
      case SelectionAlgorithm::kIndependent:
        return {{"count", "5", "number of gates to replace"}};
      case SelectionAlgorithm::kDependent:
        return {{"paths", "1", "longest I/O paths fully replaced"}};
      case SelectionAlgorithm::kParametric:
        return {{"paths", "0", "timing paths to draw from (0 = auto-scale)"},
                {"fraction", "0.35", "per-path gate selection fraction"},
                {"retries", "30", "timing-violation re-draws per path"}};
    }
    return {};
  }

  DefenseResult apply(const Netlist& original, const TechLibrary& lib,
                      const DefenseOptions& opt,
                      const Tuning& tuning) const override {
    FlowOptions fo;
    fo.algorithm = alg_;
    fo.selection.seed = opt.seed;
    fo.selection.timing_margin = opt.timing_margin;
    fo.activity = opt.activity;
    for (const auto& [k, v] : tuning) {
      if (alg_ == SelectionAlgorithm::kIndependent && k == "count") {
        fo.selection.indep_count = parse_int(kind(), k, v);
      } else if (alg_ == SelectionAlgorithm::kDependent && k == "paths") {
        fo.selection.dep_num_paths = parse_int(kind(), k, v);
      } else if (alg_ == SelectionAlgorithm::kParametric && k == "paths") {
        fo.selection.para_num_paths = parse_int(kind(), k, v);
      } else if (alg_ == SelectionAlgorithm::kParametric && k == "fraction") {
        fo.selection.para_gate_fraction = parse_double(kind(), k, v);
      } else if (alg_ == SelectionAlgorithm::kParametric && k == "retries") {
        fo.selection.para_max_retries = parse_int(kind(), k, v);
      } else {
        bad_tuning(kind(), k);
      }
    }

    FlowResult flow = run_secure_flow(original, lib, fo);
    DefenseResult r;
    r.locked = std::move(flow.hybrid);
    r.key = flow.selection.key;
    r.selection = std::move(flow.selection);
    // Forward the flow's own sign-off verbatim (bit-identity with the
    // direct call) instead of recomputing through finish().
    r.overhead = flow.overhead;
    r.security = flow.security;
    r.cells_replaced = static_cast<int>(r.selection.replaced.size());
    count_key(r);
    std::ostringstream d;
    d << r.cells_replaced << " STT LUTs, " << r.selection.paths_considered
      << " pooled paths";
    r.detail = d.str();
    return r;
  }

 private:
  SelectionAlgorithm alg_;
};

}  // namespace

std::unique_ptr<DefenseBase> make_paper_defense(SelectionAlgorithm alg) {
  return std::make_unique<PaperDefense>(alg);
}

}  // namespace stt::defense
