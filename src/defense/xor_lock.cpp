// XOR/XNOR key-gate insertion — the classic random-logic-locking baseline
// (EPIC, Roy et al., DATE'08), lowered onto the LUT key representation.
//
// A key gate on net d is a single-input LUT whose configured mask is the
// key bit: BUF (0b10) passes d through, NOT (0b01) inverts. The XNOR
// flavour prepends a CMOS inverter and configures the LUT as NOT, so the
// composition is again transparent but the correct key bit is the opposite
// polarity — the structural mix prevents an attacker from reading the key
// straight off the gate flavour, exactly as XOR/XNOR mixing does in EPIC.
// To the foundry both flavours are an unconfigured 1-input LUT.
#include <sstream>

#include "defense/registry.hpp"
#include "util/rng.hpp"

namespace stt::defense {

namespace {

constexpr std::uint64_t kLut1Buf = 0b10;
constexpr std::uint64_t kLut1Not = 0b01;

class XorLock final : public DefenseBase {
 public:
  std::string_view kind() const override { return "xor"; }

  std::string_view description() const override {
    return "random XOR/XNOR key-gate insertion (EPIC-style baseline)";
  }

  std::vector<TuningKnob> knobs() const override {
    return {{"count", "16", "key gates to insert (clamped to edge count)"},
            {"xnor", "0.5", "fraction of gates using the XNOR flavour"}};
  }

  DefenseResult apply(const Netlist& original, const TechLibrary& lib,
                      const DefenseOptions& opt,
                      const Tuning& tuning) const override {
    int count = 16;
    double xnor_fraction = 0.5;
    for (const auto& [k, v] : tuning) {
      if (k == "count") {
        count = parse_int(kind(), k, v);
      } else if (k == "xnor") {
        xnor_fraction = parse_double(kind(), k, v);
      } else {
        bad_tuning(kind(), k);
      }
    }
    if (count <= 0) {
      throw std::invalid_argument("defense \"xor\": count must be positive");
    }

    DefenseResult r;
    r.locked = original;
    Netlist& work = r.locked;

    // Candidate sites: every fan-in edge of every cell, in (cell, slot)
    // order — gate inputs, DFF D pins and output drivers alike.
    struct Site {
      CellId cell;
      std::size_t slot;
    };
    std::vector<Site> sites;
    for (CellId id = 0; id < work.size(); ++id) {
      const Cell& c = work.cell(id);
      for (std::size_t slot = 0; slot < c.fanins.size(); ++slot) {
        sites.push_back({id, slot});
      }
    }
    if (sites.empty()) {
      throw std::invalid_argument("defense \"xor\": netlist has no edges");
    }

    Rng rng(opt.seed);
    const std::vector<Site> chosen = rng.sample(
        std::span<const Site>(sites), static_cast<std::size_t>(count));

    int xnor_gates = 0;
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const Site site = chosen[i];
      const CellId driver = work.cell(site.cell).fanins[site.slot];
      const std::string name =
          unique_name(work, "kg" + std::to_string(i), {"_inv"});
      const bool xnor_flavour = rng.chance(xnor_fraction);
      CellId kg;
      if (xnor_flavour) {
        const CellId inv =
            work.add_gate(CellKind::kNot, name + "_inv", {driver});
        kg = work.add_lut(name, {inv}, kLut1Not);
        r.cells_added += 2;
        ++xnor_gates;
      } else {
        kg = work.add_lut(name, {driver}, kLut1Buf);
        r.cells_added += 1;
      }
      work.replace_fanin(site.cell, site.slot, kg);
      r.key[name] = work.cell(kg).lut_mask;
      r.annotations.key_gates.insert(name);
    }
    work.check();

    finish(r, original, lib, opt);
    std::ostringstream d;
    d << chosen.size() << " key gates (" << xnor_gates << " xnor)";
    r.detail = d.str();
    return r;
  }
};

}  // namespace

std::unique_ptr<DefenseBase> make_xor_lock() {
  return std::make_unique<XorLock>();
}

}  // namespace stt::defense
