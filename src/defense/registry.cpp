#include "defense/registry.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/obs.hpp"

namespace stt::defense {

Registry::Registry() {
  const auto reg = [this](std::unique_ptr<DefenseBase> d) {
    std::string key{d->kind()};
    defenses_.emplace(std::move(key), std::move(d));
  };
  reg(make_paper_defense(SelectionAlgorithm::kIndependent));
  reg(make_paper_defense(SelectionAlgorithm::kDependent));
  reg(make_paper_defense(SelectionAlgorithm::kParametric));
  reg(make_xor_lock());
  reg(make_latch_lock());
  reg(make_const_lock());
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(defenses_.size());
  for (const auto& [name, d] : defenses_) out.push_back(name);
  return out;
}

bool Registry::contains(std::string_view kind) const {
  return defenses_.count(kind) != 0;
}

const DefenseBase& Registry::at(std::string_view kind) const {
  const auto it = defenses_.find(kind);
  if (it == defenses_.end()) {
    std::string known;
    for (const auto& [name, d] : defenses_) {
      known += known.empty() ? name : ", " + name;
    }
    throw std::invalid_argument("defense registry: unknown defense \"" +
                                std::string(kind) + "\" (known: " + known +
                                ")");
  }
  return *it->second;
}

DefenseResult Registry::apply(std::string_view kind, const Netlist& original,
                              const TechLibrary& lib,
                              const DefenseOptions& opt,
                              const Tuning& tuning) const {
  const DefenseBase& d = at(kind);
  static obs::Counter& runs = obs::Metrics::global().counter("defense.runs");
  runs.add(1);
  const std::string span_name{d.kind()};
  STTLOCK_SPAN("defense", span_name);
  const auto t0 = std::chrono::steady_clock::now();
  DefenseResult r = d.apply(original, lib, opt, tuning);
  r.defense = std::string(kind);
  r.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

const Registry& registry() {
  static const Registry r;
  return r;
}

}  // namespace stt::defense
