// Unified defense API: every logic-locking scheme the harness evaluates
// implements one interface, mirroring the attack side (attack/registry.hpp).
//
//   defense::DefenseResult r = defense::registry().apply(
//       "latch", original, lib, {.seed = 7});
//
// A defense takes a netlist and returns a *configured* locked netlist plus
// the key material, overhead/security sign-off, and the cell accounting the
// campaign's CSV columns report. The key is always expressed as LUT
// configuration masks (hybrid.hpp's LutKey), so `foundry_view` redaction,
// key serialization, `sttlock program` and all seven registered attacks
// work against every defense without modification:
//
//   * the paper's three selection algorithms replace gates with key-holding
//     LUTs directly;
//   * an XOR/XNOR key gate lowers to a 1-input LUT whose BUF/NOT polarity
//     is the key bit;
//   * a decoy latch lowers to a 2-input LUT mux whose mask decides between
//     transparency (correct key) and latching the decoy state (wrong key);
//   * an ASSURE-style locked constant lowers to a LUT whose configured
//     function is constant.
//
// Per-defense knobs travel as (key, value) string pairs (`Tuning`), like
// attack tuning; unknown keys throw std::invalid_argument so CLI typos
// surface instead of silently running defaults.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/hybrid.hpp"
#include "core/overhead.hpp"
#include "core/security.hpp"
#include "core/selection.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"
#include "verify/annotations.hpp"

namespace stt::defense {

/// Defense-specific knobs as (key, value) strings, e.g.
/// {{"count", "16"}, {"xnor", "0.25"}}. An empty tuning runs the defense's
/// documented defaults.
using Tuning = std::vector<std::pair<std::string, std::string>>;

/// Catalogue entry for one knob, surfaced by `sttlock defend --list`.
struct TuningKnob {
  std::string key;
  std::string default_value;
  std::string help;
};

/// Options shared by every defense (defense-specific knobs go in Tuning).
struct DefenseOptions {
  std::uint64_t seed = 1;       ///< all randomness derives from this
  double timing_margin = 0.05;  ///< allowed critical-delay degradation
  double activity = 0.10;       ///< switching activity for power sign-off
};

/// Common projection of every defense's outcome.
struct DefenseResult {
  std::string defense;  ///< registry kind, echoed by Registry::apply
  Netlist locked;       ///< configured locked netlist (key programmed)
  /// Masks of the key-holding LUTs this defense created — the secret
  /// withheld from the foundry. `apply_key(foundry_view(locked), key)`
  /// reconstructs the configured design.
  LutKey key;
  /// Name-based declarations of the inserted constructs, consumed by the
  /// lint layers (HYB004-006 validation + by-design finding suppression).
  DefenseAnnotations annotations;
  /// Selection statistics; populated by the paper adapters only (zeros for
  /// the related-work defenses, which have no path-selection stage).
  SelectionResult selection;
  OverheadReport overhead;  ///< Table I metrics vs the original
  SecurityReport security;  ///< Eq. (1)-(3) estimates on the locked netlist
  int key_cells = 0;      ///< LUT cells carrying key material
  int key_bits = 0;       ///< sum of 2^fanin over the key cells
  int cells_added = 0;    ///< cells inserted into the netlist
  int cells_replaced = 0; ///< existing cells converted in place
  std::string detail;     ///< one-line defense-specific summary
  double elapsed_s = 0;   ///< set by Registry::apply
};

class DefenseBase {
 public:
  virtual ~DefenseBase() = default;

  virtual std::string_view kind() const = 0;
  virtual std::string_view description() const = 0;
  virtual std::vector<TuningKnob> knobs() const = 0;

  /// Apply the defense to a copy of `original` (left untouched). Throws
  /// std::invalid_argument for an unknown tuning key or an unlockable
  /// netlist; the campaign retries with the next attempt's seed.
  virtual DefenseResult apply(const Netlist& original, const TechLibrary& lib,
                              const DefenseOptions& opt,
                              const Tuning& tuning) const = 0;

 protected:
  /// Shared epilogue: overhead/security sign-off plus key accounting
  /// (key_cells, key_bits from `r.key` against `r.locked`). The paper
  /// adapters skip this and forward `run_secure_flow`'s own reports so the
  /// adapter stays bit-identical to the direct call.
  static void finish(DefenseResult& r, const Netlist& original,
                     const TechLibrary& lib, const DefenseOptions& opt);

  /// Key accounting only (used by the paper adapters after the flow).
  static void count_key(DefenseResult& r);

  /// A net name not yet present in `nl`, derived from `base`; `suffixes`
  /// are companion names ("_q", "_inv", ...) that must stay free too.
  static std::string unique_name(const Netlist& nl, const std::string& base,
                                 const std::vector<std::string>& suffixes = {});

  [[noreturn]] static void bad_tuning(std::string_view kind,
                                      const std::string& key);

  /// Strict numeric parses for tuning values; throw std::invalid_argument
  /// naming the kind and key on garbage input.
  static int parse_int(std::string_view kind, const std::string& key,
                       const std::string& value);
  static double parse_double(std::string_view kind, const std::string& key,
                             const std::string& value);
};

}  // namespace stt::defense
