// Latch-based logic locking (after Sweeney et al., "Latch-Based Logic
// Locking"), lowered onto the LUT key representation.
//
// On a sampled timing-path edge u -> v the defense inserts a decoy
// flip-flop dl_q capturing u and a 2-input LUT mux dl = LUT(u, dl_q) in
// front of v. The configured mask 0xA selects input 0 (u): the decoy is
// transparent and functionality is preserved. The plausible wrong
// configuration 0xC selects the flip-flop, turning the construct into a
// real latch that delays the net by one cycle — a purely sequential
// corruption that combinational-only reasoning misses. To the foundry the
// mux is an unconfigured LUT2, so which inserted latches are decoys (and
// which polarity is transparent) is part of the key.
#include <set>
#include <sstream>
#include <utility>

#include "defense/registry.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace stt::defense {

namespace {

/// LUT2 row index is in0 + 2*in1, so f(a, b) = a is rows {1, 3} = 0xA
/// (transparent) and f(a, b) = b is rows {2, 3} = 0xC (latched).
constexpr std::uint64_t kSelectData = 0xA;

class LatchLock final : public DefenseBase {
 public:
  std::string_view kind() const override { return "latch"; }

  std::string_view description() const override {
    return "decoy-latch insertion on timing-path edges (latch-based locking)";
  }

  std::vector<TuningKnob> knobs() const override {
    return {{"count", "8", "decoy latches to insert (clamped to edge count)"}};
  }

  DefenseResult apply(const Netlist& original, const TechLibrary& lib,
                      const DefenseOptions& opt,
                      const Tuning& tuning) const override {
    int count = 8;
    for (const auto& [k, v] : tuning) {
      if (k == "count") {
        count = parse_int(kind(), k, v);
      } else {
        bad_tuning(kind(), k);
      }
    }
    if (count <= 0) {
      throw std::invalid_argument("defense \"latch\": count must be positive");
    }

    DefenseResult r;
    r.locked = original;
    Netlist& work = r.locked;

    // Candidate edges come from the paper's pooled I/O paths (graph/paths):
    // consecutive path cells u -> v give the timing-relevant edges a latch
    // retimes. Deduplicate (v, slot) keeping first-occurrence order so the
    // sample is deterministic in path-pool order.
    Rng rng(opt.seed);
    const std::vector<IoPath> pool = build_path_pool(work, rng);
    struct Edge {
      CellId victim;
      std::size_t slot;
    };
    std::vector<Edge> edges;
    std::set<std::pair<CellId, std::size_t>> seen;
    for (const IoPath& path : pool) {
      for (std::size_t i = 0; i + 1 < path.cells.size(); ++i) {
        const CellId u = path.cells[i];
        const CellId v = path.cells[i + 1];
        const Cell& victim = work.cell(v);
        for (std::size_t slot = 0; slot < victim.fanins.size(); ++slot) {
          if (victim.fanins[slot] != u) continue;
          if (seen.insert({v, slot}).second) edges.push_back({v, slot});
          break;
        }
      }
    }
    if (edges.empty()) {
      throw std::invalid_argument(
          "defense \"latch\": no timing-path edges found");
    }

    const std::vector<Edge> chosen = rng.sample(
        std::span<const Edge>(edges), static_cast<std::size_t>(count));
    for (std::size_t i = 0; i < chosen.size(); ++i) {
      const Edge edge = chosen[i];
      const CellId u = work.cell(edge.victim).fanins[edge.slot];
      const std::string name =
          unique_name(work, "dl" + std::to_string(i), {"_q"});
      const CellId q = work.add_dff(name + "_q", u);
      const CellId mux = work.add_lut(name, {u, q}, kSelectData);
      work.replace_fanin(edge.victim, edge.slot, mux);
      r.key[name] = kSelectData;
      r.annotations.decoy_latches.insert(name);
      r.cells_added += 2;
    }
    work.check();

    finish(r, original, lib, opt);
    std::ostringstream d;
    d << chosen.size() << " decoy latches over " << pool.size()
      << " pooled paths";
    r.detail = d.str();
    return r;
  }
};

}  // namespace

std::unique_ptr<DefenseBase> make_latch_lock() {
  return std::make_unique<LatchLock>();
}

}  // namespace stt::defense
