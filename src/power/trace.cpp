#include "power/trace.hpp"

#include <cmath>

#include "sim/simulator.hpp"

namespace stt {

namespace {

double gaussian(Rng& rng, double sigma) {
  if (sigma <= 0) return 0;
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  return sigma * std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * M_PI * u2);
}

}  // namespace

PowerTraceResult simulate_power_trace(const Netlist& nl,
                                      const TechLibrary& lib,
                                      const TraceOptions& opt) {
  Rng rng(opt.seed ^ 0x70a3c3a11ull);
  Rng noise_rng = rng.split();  // keep stimulus independent of noise draws
  PowerTraceResult result;
  result.trace_fj.reserve(opt.cycles);
  result.pi_bits.reserve(opt.cycles);
  result.state_bits.reserve(opt.cycles);

  // Precompute per-cell toggle energies.
  std::vector<double> toggle_energy(nl.size(), 0.0);
  std::vector<double> lut_read_energy(nl.size(), 0.0);
  double leak_baseline = 0;
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kConst0:
      case CellKind::kConst1:
        break;
      case CellKind::kLut: {
        const LutParams p = lib.lut(c.fanin_count());
        lut_read_energy[id] = p.e_cycle_fj;  // per input-transition event
        leak_baseline += p.leak_nw * 1e-3;
        break;
      }
      case CellKind::kDff: {
        const CmosCellParams p = lib.gate(CellKind::kDff, 1);
        toggle_energy[id] = p.e_active_fj;
        leak_baseline += p.leak_nw * 1e-3;
        break;
      }
      default: {
        const CmosCellParams p = lib.gate(c.kind, c.fanin_count());
        toggle_energy[id] = p.e_active_fj;
        leak_baseline += p.leak_nw * 1e-3;
        break;
      }
    }
  }

  SequentialSimulator sim(nl);
  sim.reset(false);
  const std::size_t n_pi = nl.inputs().size();
  std::vector<std::uint64_t> pi(n_pi, 0);
  std::vector<std::uint64_t> po(nl.outputs().size());  // reused scratch
  std::vector<std::uint64_t> prev_wave;

  for (int cycle = 0; cycle < opt.cycles; ++cycle) {
    // Record state *before* the cycle, then apply a new PI vector.
    std::vector<bool> state(nl.dffs().size());
    for (std::size_t j = 0; j < state.size(); ++j) {
      state[j] = sim.state()[j] & 1ull;
    }
    for (auto& w : pi) {
      if (rng.chance(opt.input_toggle)) w ^= 1ull;
    }
    std::vector<bool> pi_vec(n_pi);
    for (std::size_t i = 0; i < n_pi; ++i) pi_vec[i] = pi[i] & 1ull;

    sim.step_into(pi, po);
    const auto wave = sim.last_wave();

    double energy = leak_baseline;
    if (!prev_wave.empty()) {
      for (CellId id = 0; id < nl.size(); ++id) {
        const Cell& c = nl.cell(id);
        const bool now = wave[id] & 1ull;
        const bool before = prev_wave[id] & 1ull;
        if (c.kind == CellKind::kLut) {
          // Read event on any input transition; content-independent.
          bool input_event = false;
          for (const CellId f : c.fanins) {
            if ((wave[f] & 1ull) != (prev_wave[f] & 1ull)) input_event = true;
          }
          if (input_event) energy += lut_read_energy[id];
        } else if (now != before) {
          energy += toggle_energy[id];
        }
        if (c.kind == CellKind::kDff) {
          energy += 0.3 * toggle_energy[id];  // clock pin, every cycle
        }
      }
    }
    energy += gaussian(noise_rng, opt.noise_sigma_fj);

    result.trace_fj.push_back(energy);
    result.pi_bits.push_back(std::move(pi_vec));
    result.state_bits.push_back(std::move(state));
    prev_wave.assign(wave.begin(), wave.end());
  }
  return result;
}

}  // namespace stt
