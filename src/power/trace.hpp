// Cycle-accurate power-trace simulation for side-channel experiments.
//
// Section II claims a security benefit beyond reverse engineering:
// "STT-based LUT power consumption is almost insensitive to its input
// changes … more robust against power-based side channel attacks." The
// trace model makes that testable:
//
//  * a CMOS cell draws E_active whenever its *output* toggles — the
//    data-dependent component a differential power attacker exploits;
//  * an STT LUT draws E_cycle per *input transition event*, independent of
//    its configured content and of the output value — the read current is
//    the same whichever MTJ branch is selected;
//  * flip-flops draw clock power plus data-toggle power; everything leaks
//    a constant baseline; Gaussian measurement noise is added on top.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"
#include "util/rng.hpp"

namespace stt {

struct TraceOptions {
  std::uint64_t seed = 1;
  int cycles = 512;
  double input_toggle = 0.5;  ///< per-cycle PI toggle probability
  double noise_sigma_fj = 0.0;  ///< Gaussian measurement noise per sample
};

struct PowerTraceResult {
  /// One energy sample (fJ) per simulated cycle.
  std::vector<double> trace_fj;
  /// The applied stimulus, for attacker-side prediction: pi_bits[t][i].
  std::vector<std::vector<bool>> pi_bits;
  /// Observed state before each cycle: state_bits[t][j].
  std::vector<std::vector<bool>> state_bits;
};

PowerTraceResult simulate_power_trace(const Netlist& nl,
                                      const TechLibrary& lib,
                                      const TraceOptions& opt = {});

}  // namespace stt
