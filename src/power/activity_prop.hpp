// Analytic switching-activity propagation (static probabilistic model).
//
// The simulation-based estimator (sim/activity.hpp) is exact but needs
// stimulus; signing off large designs wants the classic closed-form model:
// propagate signal probabilities through the truth tables assuming spatial
// input independence, then derive the toggle rate under the temporal-
// independence model, alpha = 2 * p * (1 - p). Flip-flops take their D
// probability as steady state (iterated to a fixed point for feedback).
//
// Known model error: reconvergent fan-out correlation — documented, and
// bounded by the cross-check test against the simulation estimator.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

struct SignalStats {
  std::vector<double> prob1;   ///< P(signal = 1), indexed by CellId
  std::vector<double> toggle;  ///< per-cycle toggle probability (alpha)
};

struct ActivityPropOptions {
  double pi_prob1 = 0.5;
  /// Fixed-point iterations for sequential feedback.
  int iterations = 16;
};

SignalStats propagate_activity(const Netlist& nl,
                               const ActivityPropOptions& opt = {});

/// P(out = 1) of a function given independent input probabilities.
double mask_output_probability(std::uint64_t mask, int fanin,
                               const std::vector<double>& input_prob1);

}  // namespace stt
