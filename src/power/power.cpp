#include "power/power.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace stt {

namespace {

// Fraction of a DFF's dynamic energy drawn by the clock pin every cycle,
// regardless of data activity.
constexpr double kDffClockFactor = 0.3;

}  // namespace

PowerBreakdown estimate_power(const Netlist& nl, const TechLibrary& lib,
                              std::span<const double> alpha, double freq_ghz) {
  if (alpha.size() != nl.size()) {
    throw std::invalid_argument("estimate_power: alpha size mismatch");
  }
  PowerBreakdown p;
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kConst0:
      case CellKind::kConst1:
        break;
      case CellKind::kLut: {
        const LutParams lut = lib.lut(c.fanin_count());
        // Event-driven precharge: one read per input transition. The input
        // rate is the mean fan-in output activity.
        double alpha_in = 0;
        for (const CellId f : c.fanins) alpha_in += alpha[f];
        alpha_in /= std::max(1, c.fanin_count());
        p.dynamic_uw += alpha_in * lut.e_cycle_fj * freq_ghz;
        p.leakage_uw += lut.leak_nw * 1e-3;
        break;
      }
      case CellKind::kDff: {
        const CmosCellParams ff = lib.gate(CellKind::kDff, 1);
        p.dynamic_uw +=
            (alpha[id] + kDffClockFactor) * ff.e_active_fj * freq_ghz;
        p.leakage_uw += ff.leak_nw * 1e-3;
        break;
      }
      default: {
        const CmosCellParams g = lib.gate(c.kind, c.fanin_count());
        p.dynamic_uw += alpha[id] * g.e_active_fj * freq_ghz;
        p.leakage_uw += g.leak_nw * 1e-3;
        break;
      }
    }
  }
  return p;
}

PowerBreakdown estimate_power_uniform(const Netlist& nl,
                                      const TechLibrary& lib, double alpha,
                                      double freq_ghz) {
  std::vector<double> uniform(nl.size(), alpha);
  return estimate_power(nl, lib, uniform, freq_ghz);
}

double total_area_um2(const Netlist& nl, const TechLibrary& lib) {
  double area = 0;
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kConst0:
      case CellKind::kConst1:
        break;
      case CellKind::kLut:
        area += lib.lut(c.fanin_count()).area_um2;
        break;
      case CellKind::kDff:
        area += lib.gate(CellKind::kDff, 1).area_um2;
        break;
      default:
        area += lib.gate(c.kind, c.fanin_count()).area_um2;
    }
  }
  return area;
}

}  // namespace stt
