// Power and area roll-up for pure-CMOS and hybrid STT-CMOS netlists.
//
// Model:
//  * CMOS cell dynamic power  = alpha_cell * E_active * f  (fJ x GHz = uW).
//  * STT LUT dynamic power    = alpha_in * E_cycle * f, where alpha_in is
//    the LUT's *input* transition rate. The MTJ read (precharge/evaluate)
//    is event-driven: it fires when an input changes, and its energy is
//    independent of the configured content and of which input toggled —
//    the data-independence the paper leans on for side-channel robustness
//    (Sec. II). Fig. 1's "Active Power" characterization instead clocks
//    the LUT continuously (the SPICE worst case, see tech/device_model);
//    the sign-off model here is what reproduces Table I's single-digit
//    power overheads.
//  * DFF dynamic power charges the output toggle plus a clock-pin term;
//  * every cell contributes its leakage.
//
// These roll-ups produce Table I's "power overhead %" and "area overhead %".
#pragma once

#include <span>

#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

struct PowerBreakdown {
  double dynamic_uw = 0;
  double leakage_uw = 0;
  double total_uw() const { return dynamic_uw + leakage_uw; }
};

/// `alpha` is the per-cell output switching activity (see sim/activity.hpp),
/// indexed by CellId; `freq_ghz` the operating clock.
PowerBreakdown estimate_power(const Netlist& nl, const TechLibrary& lib,
                              std::span<const double> alpha, double freq_ghz);

/// Uniform-activity convenience used by the Table I flow (the paper reports
/// power at a fixed nominal activity).
PowerBreakdown estimate_power_uniform(const Netlist& nl,
                                      const TechLibrary& lib, double alpha,
                                      double freq_ghz);

/// Sum of cell footprints in um^2.
double total_area_um2(const Netlist& nl, const TechLibrary& lib);

}  // namespace stt
