#include "power/activity_prop.hpp"

#include <cmath>
#include <stdexcept>

namespace stt {

double mask_output_probability(std::uint64_t mask, int fanin,
                               const std::vector<double>& input_prob1) {
  if (static_cast<int>(input_prob1.size()) != fanin) {
    throw std::invalid_argument("mask_output_probability: arity mismatch");
  }
  double p = 0;
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    if (!((mask >> row) & 1ull)) continue;
    double row_p = 1;
    for (int i = 0; i < fanin; ++i) {
      row_p *= (row & (1u << i)) ? input_prob1[i] : (1.0 - input_prob1[i]);
    }
    p += row_p;
  }
  return p;
}

SignalStats propagate_activity(const Netlist& nl,
                               const ActivityPropOptions& opt) {
  SignalStats stats;
  stats.prob1.assign(nl.size(), 0.5);
  stats.toggle.assign(nl.size(), 0.0);
  const auto order = nl.topo_order();

  for (int iter = 0; iter < opt.iterations; ++iter) {
    double delta = 0;
    for (const CellId id : order) {
      const Cell& c = nl.cell(id);
      double p = stats.prob1[id];
      switch (c.kind) {
        case CellKind::kInput:
          p = opt.pi_prob1;
          break;
        case CellKind::kConst0:
          p = 0;
          break;
        case CellKind::kConst1:
          p = 1;
          break;
        case CellKind::kDff:
          // Steady state: the state probability equals its next-state
          // probability at the fixed point.
          p = c.fanins.empty() ? 0.0 : stats.prob1[c.fanins[0]];
          break;
        default: {
          const int k = c.fanin_count();
          if (k > kMaxLutInputs) break;  // leave at 0.5
          std::vector<double> in(k);
          for (int i = 0; i < k; ++i) in[i] = stats.prob1[c.fanins[i]];
          const std::uint64_t mask =
              c.kind == CellKind::kLut ? c.lut_mask
                                       : gate_truth_mask(c.kind, k);
          p = mask_output_probability(mask, k, in);
          break;
        }
      }
      delta = std::max(delta, std::abs(p - stats.prob1[id]));
      stats.prob1[id] = p;
    }
    if (delta < 1e-12) break;
  }

  for (CellId id = 0; id < nl.size(); ++id) {
    const double p = stats.prob1[id];
    stats.toggle[id] = 2.0 * p * (1.0 - p);
  }
  return stats;
}

}  // namespace stt
