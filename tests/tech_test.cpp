#include <gtest/gtest.h>

#include "tech/device_model.hpp"
#include "tech/tech_library.hpp"

namespace stt {
namespace {

// The paper's Fig. 1: every ratio must be reproduced by the calibrated
// library (values normalized to the static CMOS implementation).
struct Fig1Row {
  CellKind kind;
  int fanin;
  double delay;
  double ap10;
  double ap30;
  double standby;
  double eps;
};

constexpr Fig1Row kFig1[] = {
    {CellKind::kNand, 2, 6.46, 90.35, 30.12, 0.48, 58.36},
    {CellKind::kNand, 4, 4.49, 76.73, 25.57, 0.96, 34.45},
    {CellKind::kNor, 2, 4.85, 80.20, 26.73, 0.51, 38.89},
    {CellKind::kNor, 4, 3.06, 24.25, 8.08, 1.06, 7.42},
    {CellKind::kXor, 2, 4.95, 22.45, 7.48, 0.13, 11.11},
    {CellKind::kXor, 4, 4.18, 90.06, 30.02, 0.04, 37.64},
};

class Fig1Reproduction : public ::testing::TestWithParam<Fig1Row> {};

TEST_P(Fig1Reproduction, Cmos90Ratios) {
  const Fig1Row row = GetParam();
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const DeviceComparison cmp = compare_lut_vs_cmos(lib, row.kind, row.fanin);
  EXPECT_NEAR(cmp.delay_ratio, row.delay, row.delay * 0.005);
  EXPECT_NEAR(cmp.active_power_ratio_a10, row.ap10, row.ap10 * 0.005);
  EXPECT_NEAR(cmp.active_power_ratio_a30, row.ap30, row.ap30 * 0.005);
  EXPECT_NEAR(cmp.standby_power_ratio, row.standby, row.standby * 0.01);
  EXPECT_NEAR(cmp.energy_per_switch_ratio, row.eps, row.eps * 0.005);
}

TEST_P(Fig1Reproduction, RatiosAreScaleInvariant) {
  const Fig1Row row = GetParam();
  const TechLibrary lib32 = TechLibrary::predictive32_stt();
  const DeviceComparison cmp = compare_lut_vs_cmos(lib32, row.kind, row.fanin);
  EXPECT_NEAR(cmp.delay_ratio, row.delay, row.delay * 0.005);
  EXPECT_NEAR(cmp.active_power_ratio_a10, row.ap10, row.ap10 * 0.005);
  EXPECT_NEAR(cmp.standby_power_ratio, row.standby, row.standby * 0.01);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Fig1Reproduction,
                         ::testing::ValuesIn(kFig1));

TEST(TechLibrary, ActivePowerRatioScalesInverselyWithAlpha) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  // The LUT's dynamic power is activity-independent, so the ratio at
  // alpha = 30% is exactly one third of the ratio at 10% (paper Fig. 1).
  const double r10 = active_power_ratio(lib, CellKind::kNand, 2, 0.10);
  const double r30 = active_power_ratio(lib, CellKind::kNand, 2, 0.30);
  EXPECT_NEAR(r10 / r30, 3.0, 1e-9);
}

TEST(TechLibrary, AlphaZeroThrows) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_THROW(active_power_ratio(lib, CellKind::kNand, 2, 0.0),
               std::invalid_argument);
}

TEST(TechLibrary, LutDelayDependsOnlyOnFanin) {
  // Verified indirectly: the same LUT delay divided by each gate's CMOS
  // delay gives the distinct Fig. 1 ratios; the LUT params are per-fanin.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_EQ(lib.lut(2).delay_ps, lib.lut(2).delay_ps);
  EXPECT_GT(lib.lut(4).delay_ps, lib.lut(2).delay_ps);
  EXPECT_GT(lib.lut(6).delay_ps, lib.lut(4).delay_ps);
}

TEST(TechLibrary, CmosDelaysGrowWithFanin) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  for (const CellKind kind : {CellKind::kNand, CellKind::kNor, CellKind::kAnd,
                              CellKind::kOr}) {
    double prev = 0;
    for (int k = 2; k <= kMaxLutInputs; ++k) {
      const double d = lib.gate(kind, k).delay_ps;
      EXPECT_GT(d, prev) << kind_name(kind) << " fanin " << k;
      prev = d;
    }
  }
}

TEST(TechLibrary, LutLeakageBelowCmosForLowFanin) {
  // Paper Sec. III: "for low fan-in (4-input or less) standard logic gates,
  // the STT-based LUT style implementation offers less leakage" — true for
  // NAND-class anchors at fan-in 2.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_LT(lib.lut(2).leak_nw, lib.gate(CellKind::kNand, 2).leak_nw);
  // But NOT for high fan-in NAND/NOR (stacking effect): LUT4 leakage is
  // within 10% of NAND4 (ratio 0.96) and above NOR4 (ratio 1.06).
  EXPECT_GT(lib.lut(4).leak_nw, lib.gate(CellKind::kNor, 4).leak_nw);
}

TEST(TechLibrary, InvalidQueriesThrow) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_THROW(lib.gate(CellKind::kNot, 2), std::invalid_argument);
  EXPECT_THROW(lib.gate(CellKind::kAnd, 1), std::invalid_argument);
  EXPECT_THROW(lib.gate(CellKind::kInput, 0), std::invalid_argument);
  EXPECT_THROW(lib.lut(0), std::invalid_argument);
  EXPECT_THROW(lib.lut(kMaxLutInputs + 1), std::invalid_argument);
}

TEST(TechLibrary, ExtrapolatedCellsAreFinite) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  for (int k = 5; k <= kMaxLutInputs; ++k) {
    const auto p = lib.gate(CellKind::kNand, k);
    EXPECT_GT(p.delay_ps, 0);
    EXPECT_GT(p.e_active_fj, 0);
    EXPECT_GT(p.area_um2, 0);
  }
}

TEST(TechLibrary, XnorSlightlySlowerThanXor) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_GT(lib.gate(CellKind::kXnor, 2).delay_ps,
            lib.gate(CellKind::kXor, 2).delay_ps);
}

TEST(TechLibrary, LutAreaImpliedByTableI) {
  // Table I implies LUT2 area ~ 2.5x an average gate footprint; check the
  // calibration stays in that neighbourhood.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const double nand2 = lib.gate(CellKind::kNand, 2).area_um2;
  const double ratio = lib.lut(2).area_um2 / nand2;
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 4.0);
}

TEST(TechLibrary, ConstCellsAreFree) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  EXPECT_EQ(lib.gate(CellKind::kConst0, 0).area_um2, 0);
  EXPECT_EQ(lib.gate(CellKind::kConst1, 0).delay_ps, 0);
}

TEST(TechLibrary, Predictive32IsSmallerAndFaster) {
  const TechLibrary a = TechLibrary::cmos90_stt();
  const TechLibrary b = TechLibrary::predictive32_stt();
  EXPECT_LT(b.gate(CellKind::kNand, 2).delay_ps,
            a.gate(CellKind::kNand, 2).delay_ps);
  EXPECT_LT(b.gate(CellKind::kNand, 2).area_um2,
            a.gate(CellKind::kNand, 2).area_um2);
  EXPECT_NE(a.name(), b.name());
}

}  // namespace
}  // namespace stt
