#include <gtest/gtest.h>

#include <fstream>

#include "io/bench_io.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(BenchReader, ParsesS27) {
  const Netlist nl = embedded_netlist("s27");
  EXPECT_EQ(nl.name(), "s27");
  EXPECT_EQ(nl.inputs().size(), 4u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.dffs().size(), 3u);
  EXPECT_EQ(nl.stats().gates, 10u);
  // Spot-check one gate.
  const CellId g9 = nl.find("G9");
  ASSERT_NE(g9, kNullCell);
  EXPECT_EQ(nl.cell(g9).kind, CellKind::kNand);
  EXPECT_EQ(nl.cell(g9).fanin_count(), 2);
}

TEST(BenchReader, CommentsAndBlanksIgnored) {
  const Netlist nl = read_bench(
      "# header\n\nINPUT(a)  # trailing comment\nOUTPUT(b)\nb = NOT(a)\n");
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.cell(nl.find("b")).kind, CellKind::kNot);
}

TEST(BenchReader, ForwardReferencesAllowed) {
  // b is used before it is defined: legal in .bench.
  const Netlist nl = read_bench(
      "INPUT(a)\nOUTPUT(c)\nc = AND(a, b)\nb = NOT(a)\n");
  EXPECT_EQ(nl.cell(nl.find("c")).fanin_count(), 2);
}

TEST(BenchReader, UndefinedNetFails) {
  EXPECT_THROW(read_bench("INPUT(a)\nb = NOT(zz)\n"), BenchParseError);
}

TEST(BenchReader, DuplicateDefinitionFails) {
  try {
    read_bench("INPUT(a)\na = NOT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line, 2);
  }
}

TEST(BenchReader, UnknownOperatorFails) {
  EXPECT_THROW(read_bench("INPUT(a)\nb = FROB(a)\n"), BenchParseError);
}

TEST(BenchReader, MalformedLineFails) {
  EXPECT_THROW(read_bench("INPUT a\n"), BenchParseError);
  EXPECT_THROW(read_bench("x = AND(a\n"), BenchParseError);
}

TEST(BenchReader, OutputOfUndefinedNetFails) {
  EXPECT_THROW(read_bench("INPUT(a)\nOUTPUT(ghost)\n"), BenchParseError);
}

TEST(BenchReader, OutputErrorReportsDeclarationLine) {
  try {
    read_bench("INPUT(a)\nb = NOT(a)\nOUTPUT(ghost)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_EQ(e.source, "bench");
    EXPECT_NE(std::string(e.what()).find("bench:3:"), std::string::npos);
  }
}

TEST(BenchReader, LutExtensionConfigured) {
  const Netlist nl = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT_0x8(a, b)\n");
  const Cell& y = nl.cell(nl.find("y"));
  EXPECT_EQ(y.kind, CellKind::kLut);
  EXPECT_EQ(y.lut_mask, 0x8ull);  // AND2
}

TEST(BenchReader, LutExtensionRedacted) {
  const Netlist nl = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = LUT_X(a, b)\n");
  EXPECT_EQ(nl.cell(nl.find("y")).kind, CellKind::kLut);
  EXPECT_EQ(nl.cell(nl.find("y")).lut_mask, 0ull);
}

TEST(BenchReader, BadLutMaskFails) {
  EXPECT_THROW(read_bench("INPUT(a)\ny = LUT_0xZZ(a)\n"), BenchParseError);
}

TEST(BenchWriter, RedactionHidesMasks) {
  Netlist nl = read_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  nl.replace_with_lut(nl.find("y"));
  BenchWriteOptions opt;
  opt.redact_luts = true;
  const std::string text = write_bench(nl, opt);
  EXPECT_NE(text.find("LUT_X"), std::string::npos);
  EXPECT_EQ(text.find("LUT_0x"), std::string::npos);
}

TEST(BenchWriter, HeaderEmitted) {
  const Netlist nl = embedded_netlist("s27");
  BenchWriteOptions opt;
  opt.header = "line one\nline two";
  const std::string text = write_bench(nl, opt);
  EXPECT_NE(text.find("# line one"), std::string::npos);
  EXPECT_NE(text.find("# line two"), std::string::npos);
}

// Property: write -> read roundtrips to a structurally equal netlist, both
// for pure-CMOS and for hybrid netlists with configured LUTs.
class BenchRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BenchRoundtrip, GeneratedCircuits) {
  const int seed = GetParam();
  CircuitProfile profile{"rt", 5, 5, 3, 50, 5};
  Netlist nl = generate_circuit(profile, seed);
  // Make half the circuits hybrid.
  if (seed % 2 == 0) {
    int count = 0;
    for (const CellId id : nl.logic_cells()) {
      if (is_replaceable_gate(nl.cell(id).kind) && ++count % 3 == 0) {
        nl.replace_with_lut(id);
      }
    }
  }
  const std::string text = write_bench(nl);
  const Netlist back = read_bench(text, nl.name());
  // Roundtrip preserves interface sizes, cell population and functions.
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  EXPECT_EQ(back.dffs().size(), nl.dffs().size());
  EXPECT_EQ(back.stats().gates, nl.stats().gates);
  EXPECT_EQ(back.stats().luts, nl.stats().luts);
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    const CellId bid = back.find(c.name);
    ASSERT_NE(bid, kNullCell) << c.name;
    EXPECT_EQ(back.cell(bid).kind, c.kind);
    EXPECT_EQ(back.cell(bid).fanin_count(), c.fanin_count());
    if (c.kind == CellKind::kLut) {
      EXPECT_EQ(back.cell(bid).lut_mask, c.lut_mask);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundtrip, ::testing::Range(1, 11));

TEST(VerilogWriter, EmitsStructuralModule) {
  const Netlist nl = embedded_netlist("s27");
  const std::string v = write_verilog(nl);
  EXPECT_NE(v.find("module s27"), std::string::npos);
  EXPECT_NE(v.find("input clk;"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  EXPECT_NE(v.find("nand "), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
}

TEST(VerilogWriter, RedactedLutsBecomeBlackboxes) {
  Netlist nl = read_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  nl.replace_with_lut(nl.find("y"));
  VerilogWriteOptions opt;
  opt.redact_luts = true;
  const std::string v = write_verilog(nl, opt);
  EXPECT_NE(v.find("STT_LUT2"), std::string::npos);
  EXPECT_NE(v.find("module STT_LUT2"), std::string::npos);
}

TEST(VerilogWriter, CombinationalModuleHasNoClock) {
  const Netlist nl =
      read_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const std::string v = write_verilog(nl);
  EXPECT_EQ(v.find("input clk"), std::string::npos);
}

TEST(BenchFileIo, WriteAndReadBack) {
  const Netlist nl = embedded_netlist("count2");
  const std::string path = ::testing::TempDir() + "/count2.bench";
  write_bench_file(nl, path);
  const Netlist back = read_bench_file(path);
  EXPECT_EQ(back.name(), "count2");
  EXPECT_EQ(back.stats().gates, nl.stats().gates);
}

TEST(BenchFileIo, MissingFileThrows) {
  EXPECT_THROW(read_bench_file("/nonexistent/path.bench"), std::runtime_error);
}

TEST(BenchFileIo, ParseErrorCarriesFilePath) {
  const std::string path = ::testing::TempDir() + "/broken.bench";
  {
    std::ofstream out(path);
    out << "INPUT(a)\nb = FROB(a)\n";
  }
  try {
    read_bench_file(path);
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_EQ(e.source, path);
    EXPECT_EQ(e.line, 2);
    EXPECT_NE(std::string(e.what()).find(path + ":2:"), std::string::npos);
  }
}

}  // namespace
}  // namespace stt
