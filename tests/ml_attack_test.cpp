#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "attack/ml_attack.hpp"
#include "core/packing.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(MlAttack, TrivialWithoutLuts) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  const auto result = run_ml_attack(nl, oracle);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.steps, 0);
}

TEST(MlAttack, RecoversSmallIndependentLock) {
  const Netlist original = embedded_netlist("s27");
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("G9"));
  hybrid.replace_with_lut(hybrid.find("G12"));
  ScanOracle oracle(original);
  MlAttackOptions opt;
  opt.seed = 1;
  const auto result = run_ml_attack(foundry_view(hybrid), oracle, opt);
  ASSERT_TRUE(result.success());
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, result.key);
  EXPECT_TRUE(comb_equivalent(recovered, original));
}

TEST(MlAttack, AccuracyIsMeaningful) {
  const CircuitProfile profile{"ml", 8, 8, 5, 100, 7};
  const Netlist original = generate_circuit(profile, 3);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 3;
  sopt.indep_count = 4;
  (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, sopt);
  ScanOracle oracle(original);
  MlAttackOptions opt;
  opt.seed = 4;
  const auto result = run_ml_attack(foundry_view(hybrid), oracle, opt);
  EXPECT_GT(result.final_accuracy, 0.5);
  EXPECT_LE(result.final_accuracy, 1.0);
  EXPECT_GT(result.queries, 0u);
}

TEST(MlAttack, PackingDefeatsStandardCandidateSearch) {
  // After complex-function packing the planted functions are no longer
  // standard gates, so the candidate-restricted ML attack cannot reach a
  // perfect score — the paper's Section IV-A.3 countermeasure, executable.
  const CircuitProfile profile{"mlpack", 8, 8, 5, 100, 7};
  const Netlist original = generate_circuit(profile, 7);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 7;
  sopt.indep_count = 4;
  (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, sopt);
  PackingOptions popt;
  popt.seed = 7;
  const auto packed = pack_complex_functions(hybrid, popt);
  const Netlist compact = strip_dead_logic(hybrid);
  if (packed.absorbed_gates == 0) GTEST_SKIP() << "nothing absorbed";

  // `compact` is the configured chip after packing (== original function).
  ScanOracle oracle_a(compact);
  MlAttackOptions restricted;
  restricted.seed = 9;
  restricted.standard_candidates_only = true;
  restricted.work_budget = 4000;
  const auto narrow =
      run_ml_attack(foundry_view(compact), oracle_a, restricted);
  EXPECT_FALSE(narrow.success());

  // The unrestricted bit-flip search at least matches the restricted one.
  ScanOracle oracle_b(compact);
  MlAttackOptions wide = restricted;
  wide.standard_candidates_only = false;
  wide.work_budget = 4000;
  const auto broad = run_ml_attack(foundry_view(compact), oracle_b, wide);
  EXPECT_GE(broad.final_accuracy, narrow.final_accuracy - 0.05);
}

TEST(MlAttack, DeterministicPerSeed) {
  const Netlist original = embedded_netlist("s27");
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("G15"));
  ScanOracle o1(original);
  ScanOracle o2(original);
  MlAttackOptions opt;
  opt.seed = 42;
  const auto r1 = run_ml_attack(foundry_view(hybrid), o1, opt);
  const auto r2 = run_ml_attack(foundry_view(hybrid), o2, opt);
  EXPECT_EQ(r1.steps, r2.steps);
  EXPECT_EQ(r1.key, r2.key);
  EXPECT_DOUBLE_EQ(r1.final_accuracy, r2.final_accuracy);
}

}  // namespace
}  // namespace stt
