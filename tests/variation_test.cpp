#include <gtest/gtest.h>

#include "core/selection.hpp"
#include "synth/generator.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"

namespace stt {
namespace {

const TechLibrary& lib() {
  static const TechLibrary kLib = TechLibrary::cmos90_stt();
  return kLib;
}

TEST(Variation, DeterministicPerSeed) {
  const Netlist nl = generate_circuit({"var", 8, 6, 6, 120, 8}, 2);
  VariationOptions opt;
  opt.samples = 50;
  const auto a = variation_analysis(nl, lib(), opt);
  const auto b = variation_analysis(nl, lib(), opt);
  EXPECT_EQ(a.critical_delays_ps, b.critical_delays_ps);
}

TEST(Variation, DistributionBracketsNominal) {
  const Netlist nl = generate_circuit({"var2", 8, 6, 6, 150, 9}, 3);
  const Sta sta(lib());
  const double nominal = sta.analyze(nl).critical_delay_ps;
  VariationOptions opt;
  opt.samples = 300;
  const auto r = variation_analysis(nl, lib(), opt);
  EXPECT_EQ(r.critical_delays_ps.size(), 300u);
  // Lognormal multipliers with sigma ~8%: the mean sits near nominal
  // (max over paths biases slightly high), the spread is nonzero.
  EXPECT_NEAR(r.mean_ps, nominal, nominal * 0.15);
  EXPECT_GT(r.stddev_ps, 0.0);
  EXPECT_GE(r.p99_ps, r.mean_ps);
}

TEST(Variation, YieldIsMonotoneInPeriod) {
  const Netlist nl = generate_circuit({"var3", 8, 6, 6, 120, 8}, 4);
  VariationOptions opt;
  opt.samples = 200;
  const auto r = variation_analysis(nl, lib(), opt);
  EXPECT_NEAR(r.yield_at(r.p99_ps * 2.0), 1.0, 1e-9);
  EXPECT_LE(r.yield_at(r.mean_ps * 0.5), 0.01);
  EXPECT_LE(r.yield_at(r.mean_ps), 1.0);
  EXPECT_GE(r.yield_at(r.mean_ps + 3 * r.stddev_ps),
            r.yield_at(r.mean_ps - 3 * r.stddev_ps));
}

TEST(Variation, ZeroSigmaCollapsesToNominalSta) {
  const Netlist nl = generate_circuit({"var4", 6, 5, 4, 80, 7}, 5);
  VariationOptions opt;
  opt.samples = 10;
  opt.cmos_sigma = 0.0;
  opt.lut_sigma = 0.0;
  const auto r = variation_analysis(nl, lib(), opt);
  const Sta sta(lib());
  const double nominal = sta.analyze(nl).critical_delay_ps;
  for (const double d : r.critical_delays_ps) {
    EXPECT_NEAR(d, nominal, nominal * 1e-9);
  }
}

TEST(Variation, HybridYieldAtMarginStaysHigh) {
  // The parametric selection promises <= +5% delay; under variation the
  // hybrid design should still yield well at the +10% period (LUT sigma is
  // tighter than CMOS sigma, per the STT robustness claims).
  const Netlist original = generate_circuit({"var5", 10, 8, 8, 250, 10}, 6);
  Netlist hybrid = original;
  GateSelector selector(lib());
  SelectionOptions sopt;
  sopt.seed = 6;
  (void)selector.run(hybrid, SelectionAlgorithm::kParametric, sopt);

  const Sta sta(lib());
  const double t0 = sta.analyze(original).critical_delay_ps;
  VariationOptions opt;
  opt.samples = 200;
  const auto r = variation_analysis(hybrid, lib(), opt);
  EXPECT_GT(r.yield_at(t0 * 1.10), 0.5);
}

}  // namespace
}  // namespace stt
