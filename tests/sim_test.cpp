#include <gtest/gtest.h>

#include "io/bench_io.hpp"
#include "sim/activity.hpp"
#include "sim/simulator.hpp"
#include "sim/ternary.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Property: word-parallel cell evaluation agrees with eval_gate on every
// row, for every standard kind and fan-in.
class WordEvalMatchesGate
    : public ::testing::TestWithParam<std::tuple<CellKind, int>> {};

TEST_P(WordEvalMatchesGate, AllRows) {
  const auto [kind, fanin] = GetParam();
  Cell cell;
  cell.kind = kind;
  std::vector<std::uint64_t> words(fanin, 0);
  // Pack all rows into word lanes: lane r carries input assignment r.
  for (int i = 0; i < fanin; ++i) {
    for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
      if (row & (1u << i)) words[i] |= (1ull << row);
    }
  }
  const std::uint64_t out = eval_cell_word(cell, words);
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    EXPECT_EQ(((out >> row) & 1ull) != 0, eval_gate(kind, row, fanin))
        << kind_name(kind) << " fanin " << fanin << " row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Gates, WordEvalMatchesGate,
    ::testing::Combine(::testing::Values(CellKind::kAnd, CellKind::kNand,
                                         CellKind::kOr, CellKind::kNor,
                                         CellKind::kXor, CellKind::kXnor),
                       ::testing::Range(2, kMaxLutInputs + 1)));

TEST(WordEval, LutMatchesItsMask) {
  Rng rng(3);
  for (int k = 1; k <= kMaxLutInputs; ++k) {
    for (int trial = 0; trial < 10; ++trial) {
      Cell cell;
      cell.kind = CellKind::kLut;
      cell.lut_mask = rng() & full_mask(k);
      std::vector<std::uint64_t> words(k);
      for (int i = 0; i < k; ++i) {
        for (std::uint32_t row = 0; row < num_rows(k); ++row) {
          if (row & (1u << i)) words[i] |= (1ull << row);
        }
      }
      const std::uint64_t out = eval_cell_word(cell, words);
      EXPECT_EQ(out & full_mask(k), cell.lut_mask);
    }
  }
}

TEST(Simulator, S27KnownVectors) {
  const Netlist nl = embedded_netlist("s27");
  const Simulator sim(nl);
  // With all PIs 0 and state (G5,G6,G7) = 0:
  //   G14 = NOT(G0)=1, G8 = AND(G14,G6)=0, G12 = NOR(G1,G7)=1,
  //   G15 = OR(G12,G8)=1, G16 = OR(G3,G8)=0, G9 = NAND(G16,G15)=1,
  //   G10 = NOR(G14,G11); G11 = NOR(G5,G9)=0 -> G10 = NOR(1,0)=0,
  //   G13 = NOR(G2,G12)=0, G17 = NOT(G11)=1.
  const auto out = sim.eval_single({false, false, false, false},
                                   {false, false, false});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0]);  // G17 = 1
}

TEST(Simulator, StimulusSizeMismatchThrows) {
  const Netlist nl = embedded_netlist("s27");
  const Simulator sim(nl);
  std::vector<std::uint64_t> bad_pi(2), ff(3);
  EXPECT_THROW(sim.eval_comb(bad_pi, ff), std::invalid_argument);
}

TEST(Simulator, WordLanesAreIndependent) {
  // Evaluating 64 patterns at once equals evaluating them one by one.
  CircuitProfile profile{"lanes", 6, 4, 3, 40, 5};
  const Netlist nl = generate_circuit(profile, 77);
  const Simulator sim(nl);
  Rng rng(123);
  std::vector<std::uint64_t> pis(nl.inputs().size());
  std::vector<std::uint64_t> ffs(nl.dffs().size());
  for (auto& w : pis) w = rng();
  for (auto& w : ffs) w = rng();
  const auto wave = sim.eval_comb(pis, ffs);
  const auto word_out = sim.outputs_of(wave);

  for (int lane = 0; lane < 64; lane += 17) {
    std::vector<bool> pi_bits(pis.size());
    std::vector<bool> ff_bits(ffs.size());
    for (std::size_t i = 0; i < pis.size(); ++i) {
      pi_bits[i] = (pis[i] >> lane) & 1ull;
    }
    for (std::size_t j = 0; j < ffs.size(); ++j) {
      ff_bits[j] = (ffs[j] >> lane) & 1ull;
    }
    const auto single = sim.eval_single(pi_bits, ff_bits);
    for (std::size_t o = 0; o < single.size(); ++o) {
      EXPECT_EQ(single[o], ((word_out[o] >> lane) & 1ull) != 0);
    }
  }
}

TEST(SequentialSimulator, CounterCountsUp) {
  const Netlist nl = embedded_netlist("count2");
  SequentialSimulator sim(nl);
  sim.reset(false);
  // en=1, clr=0 for every lane.
  const std::vector<std::uint64_t> stim{~0ull, 0ull};
  // count2's outputs are the *current* state (q0,q1) before the clock edge.
  int expected = 0;
  for (int cycle = 0; cycle < 8; ++cycle) {
    const auto out = sim.step(stim);
    const int q = static_cast<int>((out[0] & 1ull) | ((out[1] & 1ull) << 1));
    EXPECT_EQ(q, expected % 4) << "cycle " << cycle;
    ++expected;
  }
}

TEST(SequentialSimulator, ClearForcesZero) {
  const Netlist nl = embedded_netlist("count2");
  SequentialSimulator sim(nl);
  sim.reset(true);  // all-ones state
  const std::vector<std::uint64_t> clr{0ull, ~0ull};  // en=0, clr=1
  (void)sim.step(clr);
  const auto out = sim.step(clr);
  EXPECT_EQ(out[0], 0ull);
  EXPECT_EQ(out[1], 0ull);
}

TEST(SequentialSimulator, SetStateRoundtrip) {
  const Netlist nl = embedded_netlist("s27");
  SequentialSimulator sim(nl);
  const std::vector<std::uint64_t> state{1, 2, 3};
  sim.set_state(state);
  EXPECT_EQ(sim.state()[2], 3ull);
  std::vector<std::uint64_t> bad(2);
  EXPECT_THROW(sim.set_state(bad), std::invalid_argument);
}

// ---------------------------------------------------------- ternary ----

TEST(Ternary, KleeneAnd) {
  Cell c;
  c.kind = CellKind::kAnd;
  const Tri x = Tri::kX;
  const Tri zero = Tri::kZero;
  const Tri one = Tri::kOne;
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{zero, x}, false), Tri::kZero);
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{one, x}, false), Tri::kX);
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{one, one}, false), Tri::kOne);
}

TEST(Ternary, KleeneOrNorXor) {
  Cell c;
  c.kind = CellKind::kOr;
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{Tri::kOne, Tri::kX}, false),
            Tri::kOne);
  c.kind = CellKind::kNor;
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{Tri::kOne, Tri::kX}, false),
            Tri::kZero);
  c.kind = CellKind::kXor;
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{Tri::kOne, Tri::kX}, false),
            Tri::kX);
}

TEST(Ternary, LutUnknownForcesX) {
  Cell c;
  c.kind = CellKind::kLut;
  c.lut_mask = 0b1000;  // AND2
  const std::vector<Tri> in{Tri::kOne, Tri::kOne};
  EXPECT_EQ(eval_cell_tri(c, in, false), Tri::kOne);
  EXPECT_EQ(eval_cell_tri(c, in, true), Tri::kX);
}

TEST(Ternary, ConstantLutStaysDefiniteUnderX) {
  Cell c;
  c.kind = CellKind::kLut;
  c.lut_mask = full_mask(2);  // constant 1
  EXPECT_EQ(eval_cell_tri(c, std::vector<Tri>{Tri::kX, Tri::kX}, false),
            Tri::kOne);
}

TEST(TernarySimulator, MatchesBinaryOnDefiniteInputs) {
  CircuitProfile profile{"tern", 5, 4, 3, 40, 5};
  const Netlist nl = generate_circuit(profile, 9);
  const Simulator bin(nl);
  const TernarySimulator tern(nl);
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<bool> pi(nl.inputs().size());
    std::vector<bool> ff(nl.dffs().size());
    for (auto&& b : pi) b = rng.chance(0.5);
    for (auto&& b : ff) b = rng.chance(0.5);
    std::vector<Tri> tpi(pi.size()), tff(ff.size());
    for (std::size_t i = 0; i < pi.size(); ++i) tpi[i] = tri_from_bool(pi[i]);
    for (std::size_t j = 0; j < ff.size(); ++j) tff[j] = tri_from_bool(ff[j]);
    const auto expect = bin.eval_single(pi, ff);
    const auto got = tern.outputs_of(tern.eval_comb(tpi, tff));
    for (std::size_t o = 0; o < expect.size(); ++o) {
      EXPECT_EQ(got[o], tri_from_bool(expect[o]));
    }
  }
}

TEST(TernarySimulator, XStateStaysConservative) {
  const Netlist nl = embedded_netlist("s27");
  const TernarySimulator sim(nl);
  const std::vector<Tri> pis(4, Tri::kZero);
  const std::vector<Tri> xstate(3, Tri::kX);
  const auto wave = sim.eval_comb(pis, xstate);
  // G17 = NOT(G11) where G11 = NOR(G5, G9): with unknown state the output
  // may or may not be X, but it must never contradict a definite evaluation
  // of any concrete state. Check against both all-0 and all-1 states.
  const Simulator bin(nl);
  const auto o0 = bin.eval_single({false, false, false, false},
                                  {false, false, false});
  const auto o1 = bin.eval_single({false, false, false, false},
                                  {true, true, true});
  const Tri got = sim.outputs_of(wave)[0];
  if (got != Tri::kX) {
    EXPECT_EQ(got, tri_from_bool(o0[0]));
    EXPECT_EQ(got, tri_from_bool(o1[0]));
  }
}

TEST(TriChar, Mapping) {
  EXPECT_EQ(tri_char(Tri::kZero), '0');
  EXPECT_EQ(tri_char(Tri::kOne), '1');
  EXPECT_EQ(tri_char(Tri::kX), 'X');
}

// --------------------------------------------------------- activity ----

TEST(Activity, BoundsAndDeterminism) {
  CircuitProfile profile{"act", 6, 4, 4, 60, 6};
  const Netlist nl = generate_circuit(profile, 21);
  Rng rng_a(1);
  Rng rng_b(1);
  ActivityOptions opt;
  opt.cycles = 64;
  const auto a = estimate_activity(nl, rng_a, opt);
  const auto b = estimate_activity(nl, rng_b, opt);
  EXPECT_EQ(a.alpha, b.alpha);  // deterministic
  for (const double alpha : a.alpha) {
    EXPECT_GE(alpha, 0.0);
    EXPECT_LE(alpha, 1.0);
  }
  EXPECT_GT(a.average, 0.0);
  EXPECT_LT(a.average, 1.0);
}

TEST(Activity, HigherInputToggleRaisesActivity) {
  CircuitProfile profile{"act2", 6, 4, 4, 60, 6};
  const Netlist nl = generate_circuit(profile, 22);
  Rng r1(9), r2(9);
  ActivityOptions lo;
  lo.input_toggle = 0.05;
  lo.cycles = 128;
  ActivityOptions hi;
  hi.input_toggle = 0.5;
  hi.cycles = 128;
  const auto a_lo = estimate_activity(nl, r1, lo);
  const auto a_hi = estimate_activity(nl, r2, hi);
  EXPECT_GT(a_hi.average, a_lo.average);
}

}  // namespace
}  // namespace stt
