// Unified attack API: attack::registry() must dispatch every attack and
// produce results bit-identical to calling the attack function directly
// with the same options. Pins the adapter defaults so the registry can
// never silently drift from the underlying implementations.
#include "attack/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "attack/brute_force.hpp"
#include "attack/dpa.hpp"
#include "attack/guided_sens.hpp"
#include "attack/ml_attack.hpp"
#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "attack/sensitization.hpp"
#include "attack/seq_attack.hpp"
#include "core/flow.hpp"
#include "core/hybrid.hpp"
#include "power/trace.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"

namespace stt {
namespace {

struct Locked {
  Netlist hybrid;
  Netlist view;
};

const Locked& locked() {
  static const Locked l = [] {
    const auto profile = find_profile("s641");
    const Netlist original = generate_circuit(*profile, 7);
    FlowOptions opt;
    opt.algorithm = SelectionAlgorithm::kDependent;
    opt.selection.seed = 5;
    FlowResult flow =
        run_secure_flow(original, TechLibrary::cmos90_stt(), opt);
    return Locked{flow.hybrid, foundry_view(flow.hybrid)};
  }();
  return l;
}

void expect_base_identical(const attack::UnifiedResult& u,
                           const attack::AttackBase& direct) {
  EXPECT_EQ(u.outcome, direct.outcome);
  EXPECT_EQ(u.queries, direct.queries);
  EXPECT_EQ(u.key, direct.key);
}

TEST(AttackRegistry, ListsAllEightAttacks) {
  const auto names = attack::registry().names();
  EXPECT_EQ(names.size(), 8u);
  for (const char* name :
       {"sat", "seq", "sens", "gsens", "bf", "ml", "dpa", "static"}) {
    EXPECT_TRUE(attack::registry().contains(name)) << name;
  }
  EXPECT_FALSE(attack::registry().contains("sidechannel"));
}

TEST(AttackRegistry, UnknownAttackThrowsWithKnownNames) {
  try {
    attack::registry().run("nope", locked().view, locked().hybrid);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("sat"), std::string::npos);
  }
}

TEST(AttackRegistry, UnknownTuningKeyThrows) {
  attack::Tuning bad{{"warp_factor", "9"}};
  EXPECT_THROW(attack::registry().run("sat", locked().view, locked().hybrid,
                                      {}, bad),
               std::invalid_argument);
  EXPECT_THROW(attack::registry().run("sens", locked().view, locked().hybrid,
                                      {}, bad),
               std::invalid_argument);
}

TEST(AttackRegistry, SatMatchesDirectCall) {
  ScanOracle oracle(locked().hybrid);
  const SatAttackResult direct =
      run_sat_attack(locked().view, oracle, SatAttackOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("sat", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.iterations, static_cast<std::uint64_t>(direct.iterations));
  EXPECT_EQ(u.conflicts, direct.conflicts);
  EXPECT_EQ(u.sat.decisions, direct.stats.decisions);
  EXPECT_EQ(u.sat.propagations, direct.stats.propagations);
  EXPECT_EQ(u.attack, "sat");
  EXPECT_TRUE(u.success());
}

TEST(AttackRegistry, SatTuningMatchesDirectNaiveCall) {
  ScanOracle oracle(locked().hybrid);
  SatAttackOptions opt;
  opt.cone_pruning = false;
  const SatAttackResult direct = run_sat_attack(locked().view, oracle, opt);
  const attack::UnifiedResult u = attack::registry().run(
      "sat", locked().view, locked().hybrid, {}, {{"naive", "1"}});
  expect_base_identical(u, direct);
  EXPECT_EQ(u.conflicts, direct.conflicts);
}

TEST(AttackRegistry, SeqMatchesDirectCall) {
  const SeqAttackResult direct = run_sequential_sat_attack(
      locked().view, locked().hybrid, SeqAttackOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("seq", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.iterations, static_cast<std::uint64_t>(direct.iterations));
}

TEST(AttackRegistry, SensMatchesDirectCall) {
  ScanOracle oracle(locked().hybrid);
  const SensitizationResult direct = run_sensitization_attack(
      locked().view, oracle, SensitizationOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("sens", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.iterations, static_cast<std::uint64_t>(direct.rows_resolved));
}

TEST(AttackRegistry, GuidedSensMatchesDirectCall) {
  ScanOracle oracle(locked().hybrid);
  const GuidedSensResult direct = run_guided_sensitization(
      locked().view, oracle, GuidedSensOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("gsens", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
}

TEST(AttackRegistry, BruteForceMatchesDirectCall) {
  ScanOracle oracle(locked().hybrid);
  const BruteForceResult direct =
      run_brute_force(locked().view, oracle, BruteForceOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("bf", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.iterations, direct.combinations_tried);
}

TEST(AttackRegistry, MlMatchesDirectCall) {
  ScanOracle oracle(locked().hybrid);
  const MlAttackResult direct =
      run_ml_attack(locked().view, oracle, MlAttackOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("ml", locked().view, locked().hybrid);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.iterations, static_cast<std::uint64_t>(direct.steps));
}

TEST(AttackRegistry, DpaMatchesDirectCall) {
  const Netlist& hybrid = locked().hybrid;
  CellId target = kNullCell;
  for (CellId id = 0; id < hybrid.size(); ++id) {
    if (hybrid.cell(id).kind == CellKind::kLut) {
      target = id;
      break;
    }
  }
  ASSERT_NE(target, kNullCell);
  TraceOptions trace;  // default seed matches DpaOptions{}.seed
  const PowerTraceResult measurement =
      simulate_power_trace(hybrid, TechLibrary::cmos90_stt(), trace);
  const DpaResult direct =
      run_dpa_attack(hybrid, target, hybrid.cell(target).lut_mask,
                     measurement, DpaOptions{});
  const attack::UnifiedResult u =
      attack::registry().run("dpa", locked().view, hybrid);
  expect_base_identical(u, direct);
  EXPECT_NE(u.detail.find("target="), std::string::npos);
}

TEST(AttackRegistry, CommonOverlayControlsSeedAndBudgets) {
  // A tiny work budget must flow through the overlay and surface as
  // budget exhaustion, identically to the direct call.
  ScanOracle oracle(locked().hybrid);
  MlAttackOptions opt;
  opt.seed = 99;
  opt.work_budget = 10;
  const MlAttackResult direct = run_ml_attack(locked().view, oracle, opt);
  attack::CommonAttackOptions common;
  common.seed = 99;
  common.work_budget = 10;
  const attack::UnifiedResult u =
      attack::registry().run("ml", locked().view, locked().hybrid, common);
  expect_base_identical(u, direct);
  EXPECT_EQ(u.outcome, direct.outcome);
}

TEST(AttackRegistry, ZeroTimeLimitExpiresImmediately) {
  attack::CommonAttackOptions common;
  common.time_limit_s = 0.0;
  const attack::UnifiedResult u =
      attack::registry().run("ml", locked().view, locked().hybrid, common);
  EXPECT_TRUE(u.timed_out());
}

}  // namespace
}  // namespace stt
