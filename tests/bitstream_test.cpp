#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/bitstream.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

Netlist locked_s27() {
  Netlist nl = embedded_netlist("s27");
  nl.replace_with_lut(nl.find("G9"));
  nl.replace_with_lut(nl.find("G12"));
  return nl;
}

TEST(Crc32, KnownVectors) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0x00000000u);
  EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Fingerprint, StableAndStructureSensitive) {
  const Netlist a = locked_s27();
  const Netlist b = locked_s27();
  EXPECT_EQ(netlist_fingerprint(a), netlist_fingerprint(b));
  // Contents do NOT change the fingerprint (foundry view == configured).
  EXPECT_EQ(netlist_fingerprint(a), netlist_fingerprint(foundry_view(a)));
  // Structure does.
  Netlist c = embedded_netlist("s27");
  c.replace_with_lut(c.find("G15"));
  EXPECT_NE(netlist_fingerprint(a), netlist_fingerprint(c));
}

TEST(Bitstream, RoundtripProgramsTheChip) {
  const Netlist hybrid = locked_s27();
  const std::string image = write_bitstream(hybrid);
  EXPECT_NE(image.find("STTB v1"), std::string::npos);
  EXPECT_NE(image.find("records 2"), std::string::npos);

  Netlist fabricated = foundry_view(hybrid);
  program_from_bitstream(fabricated, image);
  EXPECT_TRUE(comb_equivalent(fabricated, hybrid));
}

TEST(Bitstream, CorruptionIsDetected) {
  const std::string image = write_bitstream(locked_s27());
  // Flip one mask nibble inside the body.
  std::string tampered = image;
  const auto pos = tampered.find("lut G12");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 10] = tampered[pos + 10] == '1' ? '2' : '1';
  EXPECT_THROW(read_bitstream(tampered), BitstreamError);
}

TEST(Bitstream, WrongDesignIsRefused) {
  const Netlist hybrid = locked_s27();
  const std::string image = write_bitstream(hybrid);
  // A different hybrid structure must refuse this image.
  Netlist other = embedded_netlist("s27");
  other.replace_with_lut(other.find("G15"));
  Netlist fabricated = foundry_view(other);
  EXPECT_THROW(program_from_bitstream(fabricated, image), BitstreamError);
}

TEST(Bitstream, MalformedImagesRejected) {
  EXPECT_THROW(read_bitstream("garbage"), BitstreamError);
  EXPECT_THROW(read_bitstream("crc 00000000\n"), BitstreamError);
  const std::string image = write_bitstream(locked_s27());
  // Truncate the body: CRC must fail.
  EXPECT_THROW(read_bitstream(image.substr(4)), BitstreamError);
}

TEST(Bitstream, FullFlowArtifact) {
  const CircuitProfile profile{"bs", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, 3);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions opt;
  opt.seed = 3;
  (void)selector.run(hybrid, SelectionAlgorithm::kParametric, opt);
  if (hybrid.stats().luts == 0) GTEST_SKIP();

  const std::string image = write_bitstream(hybrid);
  Netlist fabricated = foundry_view(hybrid);
  program_from_bitstream(fabricated, image);
  EXPECT_TRUE(comb_equivalent(fabricated, original));
}

}  // namespace
}  // namespace stt
