// Tests for the solver-core features behind the fast attack engine:
// restart schedule, incremental assumption reuse, budget/deadline stop
// causes, learnt-database reduction, and configuration-seeded portfolios.
#include <gtest/gtest.h>

#include <vector>

#include "attack/sat.hpp"
#include "util/rng.hpp"

namespace stt::sat {
namespace {

// Pigeonhole principle (n+1 pigeons, n holes): resolution-hard UNSAT.
// With `guard` defined, every clause is disabled unless guard is assumed
// true, so the refutation runs under an assumption and the solver stays
// usable (ok) afterwards.
std::vector<std::vector<Var>> add_php(Solver& s, int pigeons, int holes,
                                      const Lit* guard = nullptr) {
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> at_least;
    if (guard) at_least.push_back(~*guard);
    for (int j = 0; j < holes; ++j) at_least.push_back(pos(p[i][j]));
    s.add_clause(at_least);
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        if (guard) {
          s.add_ternary(~*guard, neg(p[i1][j]), neg(p[i2][j]));
        } else {
          s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
        }
      }
    }
  }
  return p;
}

TEST(SatSolverCore, LubySequenceValues) {
  const std::int64_t expected[] = {1, 1, 2, 1, 1, 2, 4, 1,
                                   1, 2, 1, 1, 2, 4, 8};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(luby_sequence(static_cast<std::int64_t>(i)), expected[i])
        << "index " << i;
  }
  EXPECT_EQ(luby_sequence(62), 32);  // tail of the fourth block
}

TEST(SatSolverCore, PigeonholeUnsatWithLearning) {
  Solver s;
  add_php(s, 7, 6);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.conflicts(), 0);
  EXPECT_GT(s.learned(), 0);
  EXPECT_GE(s.peak_clauses(), s.live_clauses());
}

TEST(SatSolverCore, ConflictBudgetStopsAndResumes) {
  Solver s;
  add_php(s, 8, 7);
  s.set_conflict_budget(50);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_EQ(s.last_stop(), StopCause::kConflictBudget);
  const std::int64_t after_first = s.conflicts();
  EXPECT_GE(after_first, 50);

  // Resumption: the learnt clauses survive, and an unlimited re-solve
  // finishes the refutation.
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_EQ(s.last_stop(), StopCause::kNone);
  EXPECT_GT(s.conflicts(), after_first);
}

TEST(SatSolverCore, DeadlineStopsHardInstance) {
  Solver s;
  add_php(s, 9, 8);
  s.set_deadline(0.0);  // already expired; trips at the first check
  EXPECT_EQ(s.solve(), Result::kUnknown);
  EXPECT_EQ(s.last_stop(), StopCause::kDeadline);

  // Disabling the deadline lets the same call run to completion.
  s.set_deadline(-1.0);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolverCore, ExpiredDeadlineStillDecidesEasyFormula) {
  // The deadline is only polled between conflicts, so a formula decided by
  // propagation alone is immune to it — solve() never returns kUnknown
  // without at least one conflict batch.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  s.add_unit(neg(a));
  s.set_deadline(0.0);
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(b));
}

TEST(SatSolverCore, AssumptionReuseAcrossIncrementalCalls) {
  Solver s;
  const Var e = s.new_var();
  const Lit guard = pos(e);
  add_php(s, 5, 4, &guard);

  // Under the guard the instance is UNSAT; without it, SAT — repeatedly,
  // in both orders, on one solver.
  for (int round = 0; round < 3; ++round) {
    const Lit assume_on[] = {guard};
    EXPECT_EQ(s.solve(assume_on), Result::kUnsat) << "round " << round;
    const Lit assume_off[] = {~guard};
    EXPECT_EQ(s.solve(assume_off), Result::kSat) << "round " << round;
    EXPECT_FALSE(s.value(e));
  }
  // Clauses added between calls are honored by later assumptions.
  const Var x = s.new_var();
  s.add_binary(neg(e), pos(x));  // e -> x
  const Lit assume_x[] = {neg(x)};
  EXPECT_EQ(s.solve(assume_x), Result::kSat);
  EXPECT_FALSE(s.value(e));
}

TEST(SatSolverCore, ModelConsistentAfterReduceDb) {
  // Force learnt-database reductions during a guarded PHP refutation, then
  // drop the guard and check the model against every original clause.
  Solver s;
  SolverConfig cfg;
  cfg.restart_unit = 1;  // restart (and reduce-check) as often as possible
  s.set_config(cfg);
  const Var e = s.new_var();
  const Lit guard = pos(e);
  const auto p = add_php(s, 9, 8, &guard);

  const Lit assume_on[] = {guard};
  ASSERT_EQ(s.solve(assume_on), Result::kUnsat);
  EXPECT_GE(s.db_reductions(), 1);

  const Lit assume_off[] = {~guard};
  ASSERT_EQ(s.solve(assume_off), Result::kSat);
  // With the guard false every PHP clause is trivially satisfied; what must
  // hold is that the solver still produces a total, consistent model.
  EXPECT_FALSE(s.value(e));

  // And a fresh unguarded satisfiable instance after reductions: n into n.
  Solver s2;
  SolverConfig cfg2;
  cfg2.restart_unit = 1;
  s2.set_config(cfg2);
  const auto holes = add_php(s2, 6, 6);
  ASSERT_EQ(s2.solve(), Result::kSat);
  // Verify the assignment is a real pigeon->hole matching.
  for (int i = 0; i < 6; ++i) {
    int assigned = 0;
    for (int j = 0; j < 6; ++j) assigned += s2.value(holes[i][j]) ? 1 : 0;
    EXPECT_GE(assigned, 1) << "pigeon " << i;
  }
  for (int j = 0; j < 6; ++j) {
    int occupancy = 0;
    for (int i = 0; i < 6; ++i) occupancy += s2.value(holes[i][j]) ? 1 : 0;
    EXPECT_LE(occupancy, 1) << "hole " << j;
  }
}

TEST(SatSolverCore, ConfiguredSolversAreDeterministic) {
  SolverConfig cfg;
  cfg.seed = 42;
  cfg.random_branch_freq = 0.1;
  cfg.restart_unit = 37;
  cfg.default_phase = true;

  auto run = [&cfg]() {
    Solver s;
    s.set_config(cfg);
    add_php(s, 7, 6);
    EXPECT_EQ(s.solve(), Result::kUnsat);
    return std::pair{s.conflicts(), s.decisions()};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
}

TEST(SatSolverCore, DiversifiedConfigsStayCorrect) {
  // Whatever the branching noise, verdicts must not change.
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    SolverConfig cfg;
    cfg.seed = seed;
    cfg.random_branch_freq = 0.5;
    cfg.restart_unit = 3;
    cfg.default_phase = (seed & 1) != 0;

    Solver uns;
    uns.set_config(cfg);
    add_php(uns, 6, 5);
    EXPECT_EQ(uns.solve(), Result::kUnsat) << "seed " << seed;

    Solver sat_s;
    sat_s.set_config(cfg);
    add_php(sat_s, 5, 5);
    EXPECT_EQ(sat_s.solve(), Result::kSat) << "seed " << seed;
  }
}

TEST(SatSolverCore, PhaseSavingAndSetPhase) {
  Solver s;
  SolverConfig cfg;
  cfg.default_phase = true;
  s.set_config(cfg);
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));  // both free; decisions follow the phase
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));

  s.set_phase(a, false);
  const Lit keep_b[] = {pos(b)};  // keep the clause satisfied regardless
  ASSERT_EQ(s.solve(keep_b), Result::kSat);
  EXPECT_FALSE(s.value(a));
}

TEST(SatSolverCore, StatisticsTrackClauseLifecycle) {
  Solver s;
  const std::int64_t before = s.clauses_added();
  add_php(s, 5, 4);
  const std::int64_t submitted = s.clauses_added() - before;
  EXPECT_EQ(submitted, 5 + 4 * (5 * 4) / 2);  // at-least + at-most clauses
  EXPECT_GT(s.live_clauses(), 0);
  ASSERT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GE(s.peak_clauses(), s.live_clauses());
  EXPECT_GT(s.propagations(), 0);
}

}  // namespace
}  // namespace stt::sat
