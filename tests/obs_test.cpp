// Observability layer: counters/gauges/histograms, snapshot algebra,
// trace spans, and the determinism contract the campaign report relies on
// (stable metrics byte-identical across --jobs values).
#include "obs/obs.hpp"

#include <gtest/gtest.h>

#include <string>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"

namespace stt {
namespace {

TEST(ObsCounter, SumsAcrossConcurrentWriters) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::Counter& c = obs::Metrics::global().counter("test.counter.sum");
  const std::uint64_t base = c.value();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value() - base,
            static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(ObsMetrics, GaugeSetAddValue) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::Gauge& g = obs::Metrics::global().gauge("test.gauge");
  g.set(42);
  g.add(-2);
  EXPECT_EQ(g.value(), 40);
}

TEST(ObsMetrics, HistogramPowerOfTwoBuckets) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::Histogram& h = obs::Metrics::global().histogram("test.histo");
  const obs::HistogramSnapshot before = h.snapshot();
  h.record(0);   // bit_width 0 -> bucket 0
  h.record(1);   // bucket 1
  h.record(2);   // bucket 2
  h.record(3);   // bucket 2
  h.record(4);   // bucket 3
  const obs::HistogramSnapshot after = h.snapshot();
  EXPECT_EQ(after.count - before.count, 5u);
  EXPECT_EQ(after.sum - before.sum, 10u);
  EXPECT_EQ(after.buckets[0] - before.buckets[0], 1u);
  EXPECT_EQ(after.buckets[1] - before.buckets[1], 1u);
  EXPECT_EQ(after.buckets[2] - before.buckets[2], 2u);
  EXPECT_EQ(after.buckets[3] - before.buckets[3], 1u);
}

TEST(ObsMetrics, SnapshotDiffMergeRoundTrip) {
  obs::MetricsSnapshot a;
  a.counters["x"] = 10;
  a.counters["y"] = 3;
  a.histograms["h"].count = 4;
  a.histograms["h"].sum = 20;
  a.histograms["h"].buckets[2] = 4;
  obs::MetricsSnapshot b;
  b.counters["x"] = 7;
  b.histograms["h"].count = 1;
  b.histograms["h"].sum = 5;
  b.histograms["h"].buckets[2] = 1;

  obs::MetricsSnapshot d = obs::snapshot_diff(a, b);
  EXPECT_EQ(d.counters["x"], 3u);
  EXPECT_EQ(d.counters["y"], 3u);
  EXPECT_EQ(d.histograms["h"].count, 3u);

  obs::MetricsSnapshot merged = b;
  obs::snapshot_merge(merged, d);
  EXPECT_EQ(obs::metrics_json(merged), obs::metrics_json(a));
}

TEST(ObsMetrics, StableSnapshotExcludesRuntimeInstruments) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::Metrics::global().counter("test.stable.ctr", /*stable=*/true).add(1);
  obs::Metrics::global().counter("test.runtime.ctr", /*stable=*/false).add(1);
  const obs::MetricsSnapshot stable =
      obs::Metrics::global().snapshot(/*include_runtime=*/false);
  const obs::MetricsSnapshot full =
      obs::Metrics::global().snapshot(/*include_runtime=*/true);
  EXPECT_TRUE(stable.counters.count("test.stable.ctr"));
  EXPECT_FALSE(stable.counters.count("test.runtime.ctr"));
  EXPECT_TRUE(full.counters.count("test.runtime.ctr"));
}

TEST(ObsMetrics, JsonIsSortedAndDeterministic) {
  obs::MetricsSnapshot s;
  s.counters["zebra"] = 1;
  s.counters["alpha"] = 2;
  s.gauges["g"] = -5;
  const std::string json = obs::metrics_json(s);
  const auto a = json.find("alpha");
  const auto z = json.find("zebra");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, z);
  EXPECT_EQ(json, obs::metrics_json(s));
}

TEST(ObsTrace, SpanIsInertWhileRecorderIdle) {
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.stop();
  const std::size_t before = rec.event_count();
  {
    obs::Span s("test", "idle_span");
    EXPECT_EQ(s.id(), 0u);
  }
  EXPECT_EQ(rec.event_count(), before);
}

TEST(ObsTrace, RecordsNestedSpansIntoChromeJson) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();
  {
    obs::Span outer("test", "outer");
    EXPECT_NE(outer.id(), 0u);
    { obs::Span inner("test", std::string("inner")); }
  }
  rec.stop();
  EXPECT_EQ(rec.event_count(), 2u);
  const std::string json = rec.chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"test\""), std::string::npos);
}

TEST(ObsTrace, SpansAcrossPoolThreadsAllLand) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();
  constexpr int kTasks = 64;
  {
    ThreadPool pool(4);
    for (int i = 0; i < kTasks; ++i) {
      pool.submit([] { obs::Span s("test", "pool_task"); });
    }
    pool.wait_idle();
  }
  rec.stop();
  EXPECT_EQ(rec.event_count(), static_cast<std::size_t>(kTasks));
}

TEST(ObsTrace, RestartDropsSpansFromThePreviousEpoch) {
  if (!obs::kEnabled) GTEST_SKIP() << "obs disabled at configure time";
  obs::TraceRecorder& rec = obs::TraceRecorder::global();
  rec.start();
  auto stale = std::make_unique<obs::Span>("test", "stale");
  rec.start();  // new epoch; the live span above is now stale
  stale.reset();
  { obs::Span fresh("test", "fresh"); }
  rec.stop();
  EXPECT_EQ(rec.event_count(), 1u);
  const std::string json = rec.chrome_json();
  EXPECT_EQ(json.find("\"stale\""), std::string::npos);
  EXPECT_NE(json.find("\"fresh\""), std::string::npos);
}

TEST(ObsTrace, DisabledBuildCompilesSpanMacroToNothing) {
  // The macro must be an expression-statement in both modes; under
  // ENABLE_OBS=OFF it must not evaluate its arguments.
  int evaluations = 0;
  auto name = [&evaluations] {
    ++evaluations;
    return "macro_span";
  };
  {
    STTLOCK_SPAN("test", name());
  }
  if (obs::kEnabled) {
    EXPECT_EQ(evaluations, 1);
  } else {
    EXPECT_EQ(evaluations, 0);
  }
}

// The campaign report's "obs" block is the stable-metrics delta of the
// run; it must be byte-identical between a serial and a parallel campaign
// even though runtime instruments (queue waits, steals) differ wildly.
TEST(ObsCampaign, StableMetricsDeltaIdenticalAcrossJobs) {
  CampaignSpec spec;
  spec.benchmarks = {"s641"};
  spec.algorithms = {SelectionAlgorithm::kIndependent,
                     SelectionAlgorithm::kDependent};
  spec.trials = 2;
  spec.attack = "sat";
  spec.lint = false;

  spec.jobs = 1;
  const CampaignReport serial = run_campaign(spec);
  spec.jobs = 8;
  const CampaignReport parallel = run_campaign(spec);

  EXPECT_EQ(obs::metrics_json(serial.obs), obs::metrics_json(parallel.obs));
  EXPECT_EQ(campaign_json(serial, /*include_profile=*/false),
            campaign_json(parallel, /*include_profile=*/false));
  if (obs::kEnabled) {
    EXPECT_TRUE(serial.obs.counters.count("sat.dips"));
    EXPECT_TRUE(serial.obs.counters.count("flow.runs"));
    EXPECT_FALSE(serial.obs.counters.count("pool.tasks"));
  }
}

}  // namespace
}  // namespace stt
