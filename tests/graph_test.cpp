#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/analysis.hpp"
#include "graph/paths.hpp"
#include "io/bench_io.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

// PI -> g1 -> FF1 -> g2 -> FF2 -> g3 -> PO : a clean 2-flip-flop pipeline.
Netlist pipeline() {
  Netlist nl("pipe");
  const CellId x = nl.add_input("x");
  const CellId y = nl.add_input("y");
  const CellId g1 = nl.add_gate(CellKind::kAnd, "g1", {x, y});
  const CellId f1 = nl.add_dff("f1", g1);
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {f1, x});
  const CellId f2 = nl.add_dff("f2", g2);
  const CellId g3 = nl.add_gate(CellKind::kXor, "g3", {f2, y});
  nl.mark_output(g3);
  nl.finalize();
  return nl;
}

TEST(Levels, Pipeline) {
  const Netlist nl = pipeline();
  const auto lvl = combinational_levels(nl);
  EXPECT_EQ(lvl[nl.find("x")], 0);
  EXPECT_EQ(lvl[nl.find("f1")], 0);  // FF outputs are sources
  EXPECT_EQ(lvl[nl.find("g1")], 1);
  EXPECT_EQ(lvl[nl.find("g2")], 1);
  EXPECT_EQ(lvl[nl.find("g3")], 1);
}

TEST(Levels, ChainDepth) {
  Netlist nl;
  CellId prev = nl.add_input("a");
  const CellId b = nl.add_input("b");
  for (int i = 0; i < 5; ++i) {
    prev = nl.add_gate(CellKind::kNand, "n" + std::to_string(i), {prev, b});
  }
  nl.mark_output(prev);
  nl.finalize();
  EXPECT_EQ(combinational_levels(nl)[prev], 5);
}

TEST(SeqDepth, ToPoCountsFlipFlops) {
  const Netlist nl = pipeline();
  const auto d = seq_depth_to_po(nl);
  EXPECT_EQ(d[nl.find("g3")], 0);
  EXPECT_EQ(d[nl.find("f2")], 0);  // f2's *output* reaches PO directly
  EXPECT_EQ(d[nl.find("g2")], 1);  // must cross f2
  EXPECT_EQ(d[nl.find("g1")], 2);  // crosses f1 and f2
  EXPECT_EQ(d[nl.find("x")], 1);   // best route: via g2, crossing f2
  EXPECT_EQ(d[nl.find("y")], 0);   // y feeds g3 directly
}

TEST(SeqDepth, FromPi) {
  const Netlist nl = pipeline();
  const auto d = seq_depth_from_pi(nl);
  EXPECT_EQ(d[nl.find("g1")], 0);
  EXPECT_EQ(d[nl.find("f1")], 1);
  // f2's cheapest justification is x -> g2 -> f2: one flip-flop crossing.
  EXPECT_EQ(d[nl.find("f2")], 1);
  EXPECT_EQ(d[nl.find("g3")], 0);  // y reaches g3 with no flip-flop
}

TEST(SeqDepth, UnreachableIsMarked) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kNot, "g", {a});
  (void)g;  // g drives nothing and is not an output
  nl.finalize();
  const auto d = seq_depth_to_po(nl);
  EXPECT_EQ(d[g], kUnreachable);
}

TEST(CircuitSeqDepth, PipelineIsTwo) {
  EXPECT_EQ(circuit_seq_depth(pipeline()), 2);
}

TEST(CircuitSeqDepth, CombinationalIsOne) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kNot, "g", {a});
  nl.mark_output(g);
  nl.finalize();
  EXPECT_EQ(circuit_seq_depth(nl), 1);
}

TEST(CircuitSeqDepth, SelfLoopCountsOnce) {
  // An FF in a feedback loop is one SCC: contributes its size once.
  const Netlist nl = embedded_netlist("count2");
  const int d = circuit_seq_depth(nl);
  EXPECT_GE(d, 1);
  EXPECT_LE(d, 2);
}

TEST(CircuitSeqDepth, S27) {
  const Netlist nl = embedded_netlist("s27");
  const int d = circuit_seq_depth(nl);
  // s27's three flip-flops form a feedback structure; depth is bounded by 3.
  EXPECT_GE(d, 1);
  EXPECT_LE(d, 3);
}

TEST(Tarjan, KnownComponents) {
  // 0 -> 1 -> 2 -> 0 (SCC of 3), 3 -> 4, 2 -> 3.
  std::vector<std::vector<std::uint32_t>> adj(5);
  adj[0] = {1};
  adj[1] = {2};
  adj[2] = {0, 3};
  adj[3] = {4};
  int n = 0;
  const auto comp = tarjan_scc(adj, n);
  EXPECT_EQ(n, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_NE(comp[2], comp[3]);
  EXPECT_NE(comp[3], comp[4]);
  // Reverse topological numbering: edges go to lower component ids.
  EXPECT_GT(comp[2], comp[3]);
  EXPECT_GT(comp[3], comp[4]);
}

TEST(Tarjan, EmptyAndSingleton) {
  std::vector<std::vector<std::uint32_t>> adj;
  int n = -1;
  tarjan_scc(adj, n);
  EXPECT_EQ(n, 0);
  adj.resize(1);
  const auto comp = tarjan_scc(adj, n);
  EXPECT_EQ(n, 1);
  EXPECT_EQ(comp[0], 0);
}

TEST(Cones, FaninConeOfPipeline) {
  const Netlist nl = pipeline();
  const CellId roots[] = {nl.find("g2")};
  const auto cone = fanin_cone(nl, roots);
  const std::set<CellId> set(cone.begin(), cone.end());
  EXPECT_TRUE(set.count(nl.find("g2")));
  EXPECT_TRUE(set.count(nl.find("f1")));
  EXPECT_TRUE(set.count(nl.find("g1")));  // crosses the flip-flop
  EXPECT_TRUE(set.count(nl.find("x")));
  EXPECT_FALSE(set.count(nl.find("g3")));
}

TEST(Cones, FanoutConeOfPipeline) {
  const Netlist nl = pipeline();
  const CellId roots[] = {nl.find("g1")};
  const auto cone = fanout_cone(nl, roots);
  const std::set<CellId> set(cone.begin(), cone.end());
  EXPECT_TRUE(set.count(nl.find("f1")));
  EXPECT_TRUE(set.count(nl.find("g3")));
  EXPECT_FALSE(set.count(nl.find("y")));
}

TEST(IoPath, SegmentsSplitAtSequentialCells) {
  const Netlist nl = pipeline();
  IoPath path;
  path.cells = {nl.find("x"), nl.find("g1"), nl.find("f1"),
                nl.find("g2"), nl.find("f2"), nl.find("g3")};
  path.ff_count = 2;
  const auto segs = path.segments(nl);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], std::vector<CellId>{nl.find("g1")});
  EXPECT_EQ(segs[1], std::vector<CellId>{nl.find("g2")});
  EXPECT_EQ(segs[2], std::vector<CellId>{nl.find("g3")});
}

TEST(PathSampling, WalkEndsAtPiAndPo) {
  const Netlist nl = pipeline();
  Rng rng(1);
  const IoPath path = sample_io_path(nl, nl.find("g2"), rng);
  ASSERT_FALSE(path.cells.empty());
  EXPECT_EQ(nl.cell(path.cells.front()).kind, CellKind::kInput);
  EXPECT_TRUE(nl.cell(path.cells.back()).is_output);
  // ff_count matches the DFFs actually on the walk.
  int ffs = 0;
  for (const CellId id : path.cells) {
    ffs += nl.cell(id).kind == CellKind::kDff;
  }
  EXPECT_EQ(ffs, path.ff_count);
}

class PathPoolProperty : public ::testing::TestWithParam<int> {};

TEST_P(PathPoolProperty, PoolInvariantsOnGeneratedCircuits) {
  CircuitProfile profile{"pool", 8, 6, 8, 120, 8};
  const Netlist nl = generate_circuit(profile, GetParam());
  Rng rng(GetParam() * 31);
  PathPoolOptions opt;
  opt.sample_fraction = 0.10;
  const auto pool = build_path_pool(nl, rng, opt);
  ASSERT_FALSE(pool.empty());
  int prev_depth = std::numeric_limits<int>::max();
  std::set<std::vector<CellId>> unique;
  for (const IoPath& p : pool) {
    EXPECT_EQ(nl.cell(p.cells.front()).kind, CellKind::kInput);
    EXPECT_TRUE(nl.cell(p.cells.back()).is_output);
    EXPECT_LE(p.ff_count, prev_depth);  // sorted deepest first
    prev_depth = p.ff_count;
    EXPECT_TRUE(unique.insert(p.cells).second);  // deduplicated
    // Consecutive cells are actually connected.
    for (std::size_t i = 1; i < p.cells.size(); ++i) {
      const auto& fi = nl.cell(p.cells[i]).fanins;
      EXPECT_NE(std::find(fi.begin(), fi.end(), p.cells[i - 1]), fi.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathPoolProperty, ::testing::Range(1, 9));

TEST(PathPool, ExcludeFilterApplies) {
  const Netlist nl = pipeline();
  Rng rng(5);
  PathPoolOptions opt;
  opt.min_ffs = 0;
  const auto all = build_path_pool(nl, rng, opt);
  ASSERT_FALSE(all.empty());
  // Excluding everything gives an empty pool.
  const auto none = build_path_pool(nl, rng, opt,
                                    [](const IoPath&) { return true; });
  EXPECT_TRUE(none.empty());
}

}  // namespace
}  // namespace stt
