// Byte-identity round trips: writing a netlist, reading the text back, and
// writing again must reproduce the first text exactly, for every format.
// This is a stronger property than structural equality — it pins name
// preservation, id-order emission, LUT mask formatting, and the readers'
// fidelity, and it is what makes serialized campaign artifacts diffable
// across sessions.
#include <gtest/gtest.h>

#include <string>

#include "io/bench_io.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

constexpr std::uint64_t kSeed = 20160605;

Netlist subject(const std::string& name) {
  for (const std::string& embedded : embedded_names()) {
    if (embedded == name) return embedded_netlist(name);
  }
  const auto profile = find_profile(name);
  EXPECT_TRUE(profile.has_value()) << name;
  return generate_circuit(*profile, kSeed);
}

void expect_bench_fixed_point(const Netlist& nl) {
  const std::string once = write_bench(nl);
  const Netlist back = read_bench(once, nl.name());
  EXPECT_TRUE(nl.structurally_equal(back)) << nl.name();
  EXPECT_EQ(once, write_bench(back)) << nl.name();
}

void expect_blif_fixed_point(const Netlist& nl) {
  const std::string once = write_blif(nl);
  const Netlist back = read_blif(once, nl.name());
  EXPECT_EQ(once, write_blif(back)) << nl.name();
}

void expect_verilog_fixed_point(const Netlist& nl) {
  const std::string once = write_verilog(nl);
  const Netlist back = read_verilog(once, nl.name());
  EXPECT_EQ(once, write_verilog(back)) << nl.name();
}

TEST(IoRoundTrip, EmbeddedIscasBenchBytes) {
  for (const std::string& name : embedded_names()) {
    expect_bench_fixed_point(embedded_netlist(name));
  }
}

TEST(IoRoundTrip, GeneratedIscasAllFormats) {
  for (const char* name : {"s641", "s1238", "s5378a"}) {
    const Netlist nl = subject(name);
    expect_bench_fixed_point(nl);
    expect_blif_fixed_point(nl);
    expect_verilog_fixed_point(nl);
  }
}

// LUT-heavy ITC'99-class profile: pins LUT_0x... mask formatting and the
// readers' mask truncation through all three formats.
TEST(IoRoundTrip, LutHeavyProfileAllFormats) {
  const Netlist nl = subject("b14");
  EXPECT_GT(nl.stats().luts, 0u);
  expect_bench_fixed_point(nl);
  expect_blif_fixed_point(nl);
  expect_verilog_fixed_point(nl);
}

// A large generated netlist (~30k gates): exercises the pooled connectivity
// and interner paths well past the inline-fanin capacity and the first arena
// chunk, where a layout bug would actually bite.
TEST(IoRoundTrip, LargeGeneratedBenchBytes) {
  expect_bench_fixed_point(subject("b17"));
}

}  // namespace
}  // namespace stt
