#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "util/interner.hpp"

namespace stt {
namespace {

TEST(Interner, DenseSymbolsAndDedup) {
  StringInterner in;
  bool inserted = false;
  EXPECT_EQ(in.intern("a", inserted), 0u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(in.intern("b", inserted), 1u);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(in.intern("a", inserted), 0u);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.view(0), "a");
  EXPECT_EQ(in.view(1), "b");
}

TEST(Interner, LookupDoesNotInsert) {
  StringInterner in;
  EXPECT_EQ(in.lookup("missing"), StringInterner::kNoSym);
  bool inserted = false;
  in.intern("present", inserted);
  EXPECT_EQ(in.lookup("present"), 0u);
  EXPECT_EQ(in.lookup("missing"), StringInterner::kNoSym);
  EXPECT_EQ(in.size(), 1u);
}

TEST(Interner, EmptyStringIsAValidSymbol) {
  StringInterner in;
  bool inserted = false;
  const auto sym = in.intern("", inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(in.view(sym), "");
  EXPECT_EQ(in.lookup(""), sym);
}

// Views handed out before many table growths and arena chunk rollovers must
// stay valid: chunks are never reallocated, only appended.
TEST(Interner, ViewsStableUnderGrowth) {
  StringInterner in;
  bool inserted = false;
  std::vector<std::string_view> early;
  for (int i = 0; i < 8; ++i) {
    early.push_back(in.view(in.intern("early_" + std::to_string(i), inserted)));
  }
  // Force several rehashes and multiple 64 KiB arena chunks.
  const std::string pad(200, 'x');
  for (int i = 0; i < 50000; ++i) {
    in.intern(pad + std::to_string(i), inserted);
    ASSERT_TRUE(inserted);
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(early[static_cast<std::size_t>(i)],
              "early_" + std::to_string(i));
  }
}

// Mass insert/lookup: with tens of thousands of keys in a power-of-two
// table, plenty of keys share probe sequences, so this exercises collision
// probing and the hash-then-bytes compare on both hit and miss paths.
TEST(Interner, ManyKeysResolveExactly) {
  StringInterner in;
  bool inserted = false;
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const auto sym = in.intern("net_" + std::to_string(i * 7), inserted);
    ASSERT_TRUE(inserted);
    ASSERT_EQ(sym, static_cast<StringInterner::Sym>(i));
  }
  EXPECT_EQ(in.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const std::string key = "net_" + std::to_string(i * 7);
    ASSERT_EQ(in.lookup(key), static_cast<StringInterner::Sym>(i)) << key;
    ASSERT_EQ(in.view(static_cast<StringInterner::Sym>(i)), key);
  }
  // Near misses (never inserted) must not resolve.
  for (int i = 0; i < n; i += 997) {
    ASSERT_EQ(in.lookup("net_" + std::to_string(i * 7 + 1)),
              StringInterner::kNoSym);
  }
}

TEST(Interner, ReserveKeepsSymbolsDense) {
  StringInterner in;
  in.reserve(10000, 10000 * 8);
  bool inserted = false;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_EQ(in.intern("r" + std::to_string(i), inserted),
              static_cast<StringInterner::Sym>(i));
  }
  EXPECT_GE(in.arena_bytes(), 10000u * 2u);
}

TEST(Interner, CopyIsIndependentAndPreservesSymbols) {
  StringInterner a;
  bool inserted = false;
  for (int i = 0; i < 3000; ++i) a.intern("k" + std::to_string(i), inserted);

  StringInterner b(a);
  EXPECT_EQ(b.size(), a.size());
  for (int i = 0; i < 3000; ++i) {
    const std::string key = "k" + std::to_string(i);
    ASSERT_EQ(b.lookup(key), a.lookup(key));
    ASSERT_EQ(b.view(static_cast<StringInterner::Sym>(i)), key);
  }
  // Growing the copy must not disturb the original.
  for (int i = 0; i < 3000; ++i) b.intern("extra" + std::to_string(i), inserted);
  EXPECT_EQ(a.size(), 3000u);
  EXPECT_EQ(a.lookup("extra0"), StringInterner::kNoSym);
  EXPECT_EQ(b.lookup("extra0"), 3000u);
}

}  // namespace
}  // namespace stt
