// Reproducibility guards: every published number must be a pure function of
// its seed. These tests re-run representative experiment pipelines twice
// and demand bit-identical results, which is what lets EXPERIMENTS.md claim
// its tables are reproducible.
#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "power/trace.hpp"
#include "synth/generator.hpp"
#include "timing/variation.hpp"

namespace stt {
namespace {

TEST(Reproducibility, FullFlowRowIsDeterministic) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const auto run = [&](SelectionAlgorithm alg) {
    const Netlist original = generate_circuit(*find_profile("s953"), 20160605);
    FlowOptions opt;
    opt.algorithm = alg;
    opt.selection.seed = 20160605 + static_cast<int>(alg);
    return run_secure_flow(original, lib, opt);
  };
  for (const auto alg :
       {SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
        SelectionAlgorithm::kParametric}) {
    const FlowResult a = run(alg);
    const FlowResult b = run(alg);
    EXPECT_TRUE(a.hybrid.structurally_equal(b.hybrid));
    EXPECT_EQ(a.selection.key, b.selection.key);
    EXPECT_DOUBLE_EQ(a.overhead.hybrid_delay_ps, b.overhead.hybrid_delay_ps);
    EXPECT_DOUBLE_EQ(a.overhead.hybrid_power_uw, b.overhead.hybrid_power_uw);
    EXPECT_DOUBLE_EQ(a.overhead.hybrid_area_um2, b.overhead.hybrid_area_um2);
    EXPECT_EQ(a.security.n_bf, b.security.n_bf);
    EXPECT_EQ(a.security.accessible_inputs, b.security.accessible_inputs);
  }
}

TEST(Reproducibility, GeneratorIsSeedPure) {
  // The same profile under two *different* seeds must differ, and the same
  // seed must agree across separately-constructed profile objects.
  const CircuitProfile p1 = *find_profile("s820");
  const CircuitProfile p2 = *find_profile("s820");
  EXPECT_TRUE(generate_circuit(p1, 7).structurally_equal(
      generate_circuit(p2, 7)));
  EXPECT_FALSE(generate_circuit(p1, 7).structurally_equal(
      generate_circuit(p1, 8)));
}

TEST(Reproducibility, StochasticAnalysesAreSeedPure) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = generate_circuit(*find_profile("s820"), 5);
  VariationOptions vopt;
  vopt.samples = 64;
  EXPECT_EQ(variation_analysis(nl, lib, vopt).critical_delays_ps,
            variation_analysis(nl, lib, vopt).critical_delays_ps);
  TraceOptions topt;
  topt.cycles = 64;
  topt.noise_sigma_fj = 3.0;
  EXPECT_EQ(simulate_power_trace(nl, lib, topt).trace_fj,
            simulate_power_trace(nl, lib, topt).trace_fj);
}

}  // namespace
}  // namespace stt
