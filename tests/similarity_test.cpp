#include <gtest/gtest.h>

#include "core/similarity.hpp"

namespace stt {
namespace {

TEST(GateSimilarity, PaperExamples) {
  // "the similarity of 2-input AND gate and 2-input NOR gate is 2"
  EXPECT_EQ(gate_similarity(gate_truth_mask(CellKind::kAnd, 2),
                            gate_truth_mask(CellKind::kNor, 2), 2),
            2);
  // "the similarity of 2-input AND gate and 2-input NAND gate is 0"
  EXPECT_EQ(gate_similarity(gate_truth_mask(CellKind::kAnd, 2),
                            gate_truth_mask(CellKind::kNand, 2), 2),
            0);
}

TEST(GateSimilarity, SelfSimilarityIsFullRows) {
  for (int k = 1; k <= 4; ++k) {
    const std::uint64_t m = gate_truth_mask(CellKind::kXor, std::max(2, k));
    EXPECT_EQ(gate_similarity(m, m, std::max(2, k)),
              static_cast<int>(num_rows(std::max(2, k))));
  }
}

TEST(GateSimilarity, SymmetricInArguments) {
  const auto a = gate_truth_mask(CellKind::kOr, 3);
  const auto b = gate_truth_mask(CellKind::kXnor, 3);
  EXPECT_EQ(gate_similarity(a, b, 3), gate_similarity(b, a, 3));
}

TEST(StandardCandidates, SixGatesEachFanin) {
  for (int k = 2; k <= kMaxLutInputs; ++k) {
    const auto masks = standard_candidate_masks(k);
    EXPECT_EQ(masks.size(), 6u);
    // All distinct.
    for (std::size_t i = 0; i < masks.size(); ++i) {
      for (std::size_t j = i + 1; j < masks.size(); ++j) {
        EXPECT_NE(masks[i], masks[j]);
      }
    }
  }
}

TEST(AverageSimilarity, StandardTwoInputSet) {
  // Over {AND,NAND,OR,NOR,XOR,XNOR} the mean pairwise agreement is 1.6
  // (24 agreements over 15 pairs) — bracketing the paper's 1.45, which was
  // computed over a slightly different candidate set.
  const auto masks = standard_candidate_masks(2);
  EXPECT_NEAR(average_similarity(masks, 2), 1.6, 1e-9);
}

TEST(AverageSimilarity, DegenerateSets) {
  EXPECT_EQ(average_similarity({}, 2), 0.0);
  EXPECT_EQ(average_similarity({0b1000ull}, 2), 0.0);
}

TEST(MeaningfulFunctions, KnownCounts) {
  // k=1: BUF and NOT.
  EXPECT_EQ(meaningful_function_count(1), 2u);
  // k=2: 10 functions with full support = 8 classes under permutation:
  // AND, NAND, OR, NOR, XOR, XNOR, {a&!b,b&!a}, {a|!b,b|!a}.
  EXPECT_EQ(meaningful_function_count(2), 8u);
  // The paper: "3-/4-input STT-based LUTs can also implement more than 12
  // meaningful gates."
  EXPECT_GT(meaningful_function_count(3), 12u);
  EXPECT_GT(meaningful_function_count(4), meaningful_function_count(3));
}

TEST(MeaningfulFunctions, OutOfRangeThrows) {
  EXPECT_THROW(meaningful_function_count(0), std::invalid_argument);
  EXPECT_THROW(meaningful_function_count(5), std::invalid_argument);
}

TEST(SimilarityModel, PaperConstants) {
  const auto m = SimilarityModel::paper();
  EXPECT_DOUBLE_EQ(m.alpha_for(2), 2.45);
  EXPECT_DOUBLE_EQ(m.alpha_for(3), 4.2);
  EXPECT_DOUBLE_EQ(m.alpha_for(4), 7.4);
  EXPECT_DOUBLE_EQ(m.candidates_for(2), 2.5);
  EXPECT_THROW(m.alpha_for(0), std::invalid_argument);
  EXPECT_THROW(m.candidates_for(kMaxLutInputs + 1), std::invalid_argument);
}

TEST(SimilarityModel, ComputedBracketsPaper) {
  const auto paper = SimilarityModel::paper();
  const auto computed = SimilarityModel::computed();
  // alpha(2) = 1 + 1.6 = 2.6, within ~10% of the paper's 2.45.
  EXPECT_NEAR(computed.alpha_for(2), 2.6, 1e-9);
  EXPECT_NEAR(computed.alpha_for(2), paper.alpha_for(2),
              paper.alpha_for(2) * 0.15);
  // At fan-in 3 the six-gate derivation lands exactly on the paper's 4.2
  // (mean pairwise agreement 3.2 + 1), and fan-in 4 is within 15% of 7.4.
  EXPECT_NEAR(computed.alpha_for(3), paper.alpha_for(3), 1e-9);
  EXPECT_NEAR(computed.alpha_for(4), paper.alpha_for(4),
              paper.alpha_for(4) * 0.15);
  // Both grow with fan-in.
  for (int k = 2; k < kMaxLutInputs; ++k) {
    EXPECT_GT(computed.alpha_for(k + 1), computed.alpha_for(k));
    EXPECT_GT(paper.alpha_for(k + 1), paper.alpha_for(k));
  }
}

TEST(SimilarityModel, CandidateCountsGrow) {
  const auto m = SimilarityModel::computed();
  EXPECT_EQ(m.candidates_for(1), 2.0);
  EXPECT_GT(m.candidates_for(3), m.candidates_for(2));
  EXPECT_GT(m.candidates_for(4), m.candidates_for(3));
}

}  // namespace
}  // namespace stt
