#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/packing.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"
#include "timing/sta.hpp"

namespace stt {
namespace {

TEST(ComposeMasks, AndOfOrIsAoi) {
  // outer = AND2(x, inner), inner = OR2(a, b), slot 1:
  // result(x, a, b) = x & (a | b).
  const std::uint64_t outer = gate_truth_mask(CellKind::kAnd, 2);
  const std::uint64_t inner = gate_truth_mask(CellKind::kOr, 2);
  const std::uint64_t mask = compose_masks(outer, 2, 1, inner, 2);
  for (std::uint32_t row = 0; row < 8; ++row) {
    const bool x = row & 1, a = row & 2, b = row & 4;
    EXPECT_EQ(((mask >> row) & 1ull) != 0, x && (a || b)) << row;
  }
}

TEST(ComposeMasks, SlotZeroOrdering) {
  // outer = XOR2(inner, y), inner = NOT(a): result(y, a) = !a ^ y.
  const std::uint64_t outer = gate_truth_mask(CellKind::kXor, 2);
  const std::uint64_t inner = gate_truth_mask(CellKind::kNot, 1);
  const std::uint64_t mask = compose_masks(outer, 2, 0, inner, 1);
  for (std::uint32_t row = 0; row < 4; ++row) {
    const bool y = row & 1, a = row & 2;
    EXPECT_EQ(((mask >> row) & 1ull) != 0, (!a) != y) << row;
  }
}

TEST(ComposeMasks, Validation) {
  EXPECT_THROW(compose_masks(0b1000, 2, 2, 0b10, 1), std::invalid_argument);
  EXPECT_THROW(compose_masks(0b1000, 2, -1, 0b10, 1), std::invalid_argument);
  // 4-input outer with 4-input inner -> 7 inputs: too wide.
  EXPECT_THROW(compose_masks(0xFFFF, 4, 0, 0xFFFF, 4), std::invalid_argument);
}

// Build: d = OR( AND(a,b), c ); the AND has a single fan-out.
Netlist aoi_circuit() {
  Netlist nl("aoi");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  const CellId d = nl.add_gate(CellKind::kOr, "d", {g, c});
  nl.mark_output(d);
  nl.finalize();
  return nl;
}

TEST(Packing, AbsorbsSingleFanoutDriver) {
  Netlist nl = aoi_circuit();
  nl.replace_with_lut(nl.find("d"));
  PackingOptions opt;
  opt.dummies_per_lut = 0;
  const auto result = pack_complex_functions(nl, opt);
  EXPECT_EQ(result.absorbed_gates, 1);
  // The LUT now computes (a & b) | c over three inputs — the paper's
  // complex-function example shape.
  const Cell& d = nl.cell(nl.find("d"));
  EXPECT_EQ(d.kind, CellKind::kLut);
  EXPECT_EQ(d.fanin_count(), 3);
  // The absorbed gate is dead and stripped by compaction.
  const Netlist compact = strip_dead_logic(nl);
  EXPECT_EQ(compact.find("g"), kNullCell);
  EXPECT_EQ(compact.stats().gates, 1u);
}

TEST(Packing, PreservesFunctionality) {
  Netlist original = aoi_circuit();
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("d"));
  (void)pack_complex_functions(hybrid);
  EXPECT_TRUE(comb_equivalent(original, strip_dead_logic(hybrid)));
}

TEST(Packing, DoesNotAbsorbMultiFanoutDrivers) {
  // g drives both the LUT and a second gate: absorption must keep g.
  Netlist nl("multi");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  const CellId d = nl.add_gate(CellKind::kOr, "d", {g, a});
  const CellId e = nl.add_gate(CellKind::kXor, "e", {g, b});
  nl.mark_output(d);
  nl.mark_output(e);
  nl.finalize();
  nl.replace_with_lut(d);
  PackingOptions opt;
  opt.dummies_per_lut = 0;
  const auto result = pack_complex_functions(nl, opt);
  EXPECT_EQ(result.absorbed_gates, 0);
}

TEST(Packing, DummyInputIsIgnoredByTheFunction) {
  Netlist original = aoi_circuit();
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("d"));
  PackingOptions opt;
  opt.absorb_rounds = 0;
  opt.dummies_per_lut = 2;
  const auto result = pack_complex_functions(hybrid, opt);
  EXPECT_GT(result.dummies_added, 0);
  EXPECT_GT(hybrid.cell(hybrid.find("d")).fanin_count(), 2);
  hybrid.check();
  // Still exactly the original function.
  EXPECT_TRUE(comb_equivalent(original, hybrid));
}

TEST(Packing, DummyNeverCreatesCombinationalCycle) {
  for (int seed = 1; seed <= 6; ++seed) {
    CircuitProfile profile{"cyc", 6, 5, 4, 80, 7};
    Netlist nl = generate_circuit(profile, seed);
    GateSelector selector(TechLibrary::cmos90_stt());
    SelectionOptions sopt;
    sopt.seed = seed;
    (void)selector.run(nl, SelectionAlgorithm::kIndependent, sopt);
    PackingOptions popt;
    popt.seed = seed;
    popt.dummies_per_lut = 3;
    (void)pack_complex_functions(nl, popt);
    EXPECT_NO_THROW(nl.check()) << "seed " << seed;  // includes cycle check
  }
}

// Property: the full pipeline — select, pack, strip — preserves the scan
// view on generated circuits, for every algorithm.
class PackedFlowEquivalence
    : public ::testing::TestWithParam<std::tuple<SelectionAlgorithm, int>> {};

TEST_P(PackedFlowEquivalence, SatProven) {
  const auto [alg, seed] = GetParam();
  CircuitProfile profile{"pk", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, seed);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = seed;
  (void)selector.run(hybrid, alg, sopt);
  if (hybrid.stats().luts == 0) GTEST_SKIP();

  PackingOptions popt;
  popt.seed = seed * 31;
  const auto packed = pack_complex_functions(hybrid, popt);
  (void)packed;
  const Netlist compact = strip_dead_logic(hybrid);
  compact.check();
  EXPECT_TRUE(comb_equivalent(original, compact))
      << algorithm_name(alg) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, PackedFlowEquivalence,
    ::testing::Combine(::testing::Values(SelectionAlgorithm::kIndependent,
                                         SelectionAlgorithm::kDependent,
                                         SelectionAlgorithm::kParametric),
                       ::testing::Range(1, 5)));

TEST(Packing, WidensTheCandidateSpace) {
  // After absorption + dummies, a 2-input LUT becomes 3+ inputs: the
  // attacker's per-LUT candidate space grows from 6 standard gates to the
  // full function space of the wider fan-in.
  Netlist nl = aoi_circuit();
  nl.replace_with_lut(nl.find("d"));
  const int before = nl.cell(nl.find("d")).fanin_count();
  (void)pack_complex_functions(nl);
  const int after = nl.cell(nl.find("d")).fanin_count();
  EXPECT_GT(after, before);
}

TEST(Packing, TimingGuardHoldsTheBudget) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Sta sta(lib);
  const CircuitProfile profile{"guard", 10, 8, 8, 250, 10};
  for (int seed = 1; seed <= 4; ++seed) {
    Netlist nl = generate_circuit(profile, seed);
    const double t0 = sta.analyze(nl).critical_delay_ps;
    GateSelector selector(lib);
    SelectionOptions sopt;
    sopt.seed = seed;
    (void)selector.run(nl, SelectionAlgorithm::kParametric, sopt);
    const double budget = t0 * 1.05;

    PackingOptions popt;
    popt.seed = seed;
    popt.lib = &lib;
    popt.max_delay_ps = budget;
    (void)pack_complex_functions(nl, popt);
    EXPECT_LE(sta.analyze(nl).critical_delay_ps, budget + 1e-6)
        << "seed " << seed;
  }
}

TEST(StripDeadLogic, RemovesUnreadCells) {
  Netlist nl("dead");
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kNot, "g", {a});
  const CellId dead1 = nl.add_gate(CellKind::kBuf, "dead1", {g});
  const CellId dead2 = nl.add_gate(CellKind::kNot, "dead2", {dead1});
  (void)dead2;
  nl.mark_output(g);
  nl.finalize();
  const Netlist out = strip_dead_logic(nl);
  EXPECT_EQ(out.find("dead1"), kNullCell);
  EXPECT_EQ(out.find("dead2"), kNullCell);
  EXPECT_NE(out.find("g"), kNullCell);
  EXPECT_EQ(out.inputs().size(), 1u);  // interface preserved
}

TEST(StripDeadLogic, KeepsSequentialLoops) {
  const Netlist nl = embedded_netlist("s27");
  const Netlist out = strip_dead_logic(nl);
  EXPECT_EQ(out.stats().gates, nl.stats().gates);
  EXPECT_EQ(out.dffs().size(), nl.dffs().size());
  EXPECT_TRUE(comb_equivalent(nl, out));
}

}  // namespace
}  // namespace stt
