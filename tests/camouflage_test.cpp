#include <gtest/gtest.h>

#include "attack/brute_force.hpp"
#include "attack/encode.hpp"
#include "core/camouflage.hpp"
#include "core/security.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(Camouflage, CandidateSetIsNandNorXnor) {
  const auto masks = camouflage_candidate_masks();
  ASSERT_EQ(masks.size(), 3u);
  EXPECT_EQ(masks[0], gate_truth_mask(CellKind::kNand, 2));
  EXPECT_EQ(masks[1], gate_truth_mask(CellKind::kNor, 2));
  EXPECT_EQ(masks[2], gate_truth_mask(CellKind::kXnor, 2));
}

TEST(Camouflage, OnlyEligibleGatesAreCamouflaged) {
  const CircuitProfile profile{"camo", 10, 8, 6, 300, 9};
  const Netlist original = generate_circuit(profile, 2);
  Netlist camo = original;
  CamouflageOptions opt;
  opt.seed = 2;
  opt.count = 8;
  const auto result = apply_camouflage(camo, opt);
  EXPECT_EQ(result.camouflaged.size(), 8u);
  const auto candidates = camouflage_candidate_masks();
  for (const CellId id : result.camouflaged) {
    const Cell& c = camo.cell(id);
    EXPECT_EQ(c.kind, CellKind::kLut);
    EXPECT_EQ(c.fanin_count(), 2);
    // The planted function is a member of the camouflage set.
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), c.lut_mask),
              candidates.end());
  }
  EXPECT_TRUE(comb_equivalent(original, camo));
}

TEST(Camouflage, SearchSpaceIsThreeToTheM) {
  EXPECT_NEAR(camouflage_search_space(4).to_double(), 81.0, 1e-9);
  EXPECT_NEAR(camouflage_search_space(20).log10(), 20 * std::log10(3.0),
              1e-9);
}

TEST(Camouflage, SimilarityModelReflectsSmallSet) {
  const auto camo = camouflage_similarity_model();
  const auto stt_model = SimilarityModel::paper();
  EXPECT_DOUBLE_EQ(camo.candidates_for(2), 3.0);
  EXPECT_DOUBLE_EQ(camo.alpha_for(2), 3.0);  // 1 + mean similarity of 2
  // The STT candidate count is strictly smaller for camouflage -> lower
  // brute-force exponent per gate.
  EXPECT_LT(camo.candidates_for(2), 6.0);
  EXPECT_GT(stt_model.candidates_for(3), camo.candidates_for(2));
}

TEST(Camouflage, BruteForceWithCamoSetBeatsStandardSet) {
  const CircuitProfile profile{"camo2", 8, 8, 5, 150, 8};
  const Netlist original = generate_circuit(profile, 4);
  Netlist camo = original;
  CamouflageOptions opt;
  opt.seed = 4;
  opt.count = 6;
  const auto applied = apply_camouflage(camo, opt);
  ASSERT_EQ(applied.camouflaged.size(), 6u);

  const auto camo_set = camouflage_candidate_masks();
  ScanOracle o1(camo);
  BruteForceOptions bf_camo;
  bf_camo.candidates_2in = &camo_set;
  const auto narrow = run_brute_force(foundry_view(camo), o1, bf_camo);
  ASSERT_TRUE(narrow.success());
  // 3^6 = 729 versus 6^6 = 46656 candidate combinations.
  EXPECT_NEAR(narrow.search_space.to_double(), 729.0, 1e-6);

  ScanOracle o2(camo);
  BruteForceOptions bf_std;
  const auto wide = run_brute_force(foundry_view(camo), o2, bf_std);
  ASSERT_TRUE(wide.success());
  EXPECT_GT(wide.search_space.to_double(), narrow.search_space.to_double());
}

TEST(Camouflage, SecurityEstimateBelowSttHybrid) {
  // Same gate count, same circuit: the camouflage candidate space yields a
  // strictly smaller Eq. (2)/Eq. (3) estimate than the STT-LUT space.
  const CircuitProfile profile{"camo3", 10, 8, 6, 300, 9};
  const Netlist original = generate_circuit(profile, 6);

  Netlist camo = original;
  CamouflageOptions copt;
  copt.seed = 6;
  copt.count = 10;
  (void)apply_camouflage(camo, copt);
  const auto camo_report = security_report(camo, camouflage_similarity_model());

  Netlist stt_locked = original;
  // Lock the *same* cells as STT LUTs for a controlled comparison.
  Netlist camo_ref = original;
  CamouflageOptions same;
  same.seed = 6;
  same.count = 10;
  const auto chosen = apply_camouflage(camo_ref, same);
  for (const CellId id : chosen.camouflaged) stt_locked.replace_with_lut(id);
  // Use the computed model (8 meaningful 2-input classes) for the STT side:
  // the paper's quoted P = 2.5 is, oddly, *below* the camouflage set size,
  // so the paper constants cannot express its own "not limited to a small
  // number of gates" argument at fan-in 2.
  const auto stt_report =
      security_report(stt_locked, SimilarityModel::computed());

  EXPECT_TRUE(camo_report.n_bf < stt_report.n_bf);
  EXPECT_TRUE(camo_report.n_dep < stt_report.n_dep);
}

TEST(Camouflage, Deterministic) {
  const CircuitProfile profile{"camo4", 8, 6, 5, 120, 8};
  Netlist a = generate_circuit(profile, 9);
  Netlist b = generate_circuit(profile, 9);
  CamouflageOptions opt;
  opt.seed = 11;
  const auto ra = apply_camouflage(a, opt);
  const auto rb = apply_camouflage(b, opt);
  EXPECT_EQ(ra.camouflaged, rb.camouflaged);
  EXPECT_TRUE(a.structurally_equal(b));
}

}  // namespace
}  // namespace stt
