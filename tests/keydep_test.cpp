// Key-dependency analysis (verify/keydep) and the oracle-free "static"
// attack built on it: the defense-kind x benchmark verdict grid, the
// injected-constant recovery guarantee, chain collapse, and the
// deterministic finding order the lint JSON depends on.
#include <gtest/gtest.h>

#include <algorithm>

#include "attack/registry.hpp"
#include "core/hybrid.hpp"
#include "defense/registry.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "verify/keydep.hpp"
#include "verify/lint.hpp"

namespace stt {
namespace {

defense::DefenseResult lock(const std::string& bench,
                            const std::string& kind) {
  const auto profile = find_profile(bench);
  EXPECT_TRUE(profile.has_value());
  const Netlist original = generate_circuit(*profile, 7);
  const TechLibrary lib = TechLibrary::cmos90_stt();
  defense::DefenseOptions opt;
  opt.seed = 7;
  return defense::registry().apply(kind, original, lib, opt, {});
}

KeydepResult analyze(const defense::DefenseResult& r) {
  KeydepOptions opt;
  opt.defense = r.annotations;
  return analyze_keydep(r.locked, opt);
}

int count_rule(const std::vector<LintFinding>& findings, LintRule rule) {
  int n = 0;
  for (const LintFinding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// -- the defense x benchmark grid -------------------------------------------

TEST(Keydep, VerdictGridAcrossAllDefensesAndBenches) {
  for (const std::string& kind : defense::registry().names()) {
    for (const char* bench : {"s641", "s820", "s1238"}) {
      const defense::DefenseResult r = lock(bench, kind);
      const KeydepResult k = analyze(r);
      SCOPED_TRACE(std::string(bench) + "/" + kind);

      // The original is pure CMOS, so every LUT is the defense's.
      EXPECT_EQ(k.key_cells, r.key_cells);
      EXPECT_EQ(k.key_bits, r.key_bits);
      // The effective key space never exceeds the nominal one.
      EXPECT_LE(k.eff_key_bits, k.key_bits);
      EXPECT_LE(k.key_bits_static, k.key_bits);

      if (kind == "const") {
        // Generated benches have no constant cells, so every const-defense
        // key cell comes from the injected-constant template — all of them
        // unit-propagate.
        EXPECT_EQ(k.constant_cells, k.key_cells);
        EXPECT_EQ(k.key_bits_static, k.key_bits);
        EXPECT_EQ(k.eff_key_bits, 0);
        EXPECT_EQ(k.verdict(), "broken");
      }
      if (kind == "independent" || kind == "dependent" ||
          kind == "parametric") {
        // The paper's camouflaged-LUT flow leaves nothing statically
        // recoverable.
        EXPECT_EQ(k.constant_cells, 0);
        EXPECT_EQ(k.removable_cells, 0);
        EXPECT_EQ(k.key_bits_static, 0);
      }
    }
  }
}

TEST(Keydep, XorLockedBenchIsDegradedWithInterferenceJustification) {
  const defense::DefenseResult r = lock("s641", "xor");
  const KeydepResult k = analyze(r);
  // Declared XOR key gates hold 1 bit each (BUF or NOT), so the predicted
  // effective key space is below the nominal 2 bits/LUT1...
  EXPECT_LT(k.eff_key_bits, k.key_bits);
  EXPECT_EQ(k.verdict(), "degraded");
  // ...and the verdict is justified by the interference graph: every
  // non-mutable cell's cone meets another key cell's cone.
  EXPECT_FALSE(k.edges.empty());
  for (const KeyCellReport& cell : k.cells) {
    EXPECT_EQ(cell.construct, KeyConstruct::kKeyGate);
    EXPECT_TRUE(cell.verdict == KeyVerdict::kMutable ||
                cell.verdict == KeyVerdict::kPairwiseSecure)
        << cell.name;
    if (cell.verdict == KeyVerdict::kPairwiseSecure) {
      EXPECT_GT(cell.interference_degree, 0) << cell.name;
    }
  }
  EXPECT_EQ(count_rule(k.findings, LintRule::kKeySpace), 1);
}

// -- the oracle-free static attack ------------------------------------------

TEST(StaticAttack, RecoversEveryConstDefenseKeyBitWithZeroQueries) {
  for (const char* bench : {"s641", "s820", "s1238"}) {
    const defense::DefenseResult r = lock(bench, "const");
    const attack::UnifiedResult u = attack::registry().run(
        "static", foundry_view(r.locked), r.locked);
    SCOPED_TRACE(bench);
    EXPECT_EQ(u.outcome, attack::Outcome::kSolved);
    EXPECT_EQ(u.queries, 0u);
    EXPECT_EQ(u.key, r.key);  // bit-exact ground truth, no oracle involved
  }
}

TEST(StaticAttack, AbandonsWhenKeyCellsResistStaticAnalysis) {
  const defense::DefenseResult r = lock("s641", "parametric");
  const attack::UnifiedResult u =
      attack::registry().run("static", foundry_view(r.locked), r.locked);
  EXPECT_EQ(u.outcome, attack::Outcome::kAbandoned);
  EXPECT_EQ(u.queries, 0u);
  EXPECT_TRUE(u.key.empty());
}

TEST(StaticAttack, RejectsUnknownTuning) {
  const defense::DefenseResult r = lock("s641", "const");
  EXPECT_THROW(attack::registry().run("static", foundry_view(r.locked),
                                      r.locked, {}, {{"frames", "3"}}),
               std::invalid_argument);
}

// -- series chains ----------------------------------------------------------

TEST(Keydep, SeriesKeyGateChainCollapsesToOneCompositeBit) {
  // k2(k1(a)) with both declared as key gates: each is BUF or NOT, so the
  // composite is BUF or NOT — one bit for the whole chain, anchored at k1.
  Netlist nl("chain");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId k1 = nl.add_lut("k1", {a}, 0x2);
  const CellId k2 = nl.add_lut("k2", {k1}, 0x2);
  const CellId y = nl.add_gate(CellKind::kOr, "y", {k2, b});
  nl.mark_output(y);

  KeydepOptions opt;
  opt.defense.key_gates = {"k1", "k2"};
  const KeydepResult k = analyze_keydep(nl, opt);

  ASSERT_EQ(k.cells.size(), 2u);
  EXPECT_EQ(k.cells[0].chain, 0);
  EXPECT_EQ(k.cells[1].chain, 0);
  EXPECT_EQ(k.cells[0].effective_bits, 1);  // chain head
  EXPECT_EQ(k.cells[1].effective_bits, 0);  // collapsed member
  EXPECT_EQ(k.key_bits, 4);
  EXPECT_EQ(k.eff_key_bits, 1);
  EXPECT_EQ(k.verdict(), "degraded");

  // The interference edge records the series relation.
  ASSERT_EQ(k.edges.size(), 1u);
  EXPECT_EQ(k.edges[0].a, k1);
  EXPECT_EQ(k.edges[0].b, k2);
  EXPECT_TRUE(k.edges[0].series);

  EXPECT_EQ(count_rule(k.findings, LintRule::kKeyChain), 1);
}

// -- deterministic finding order --------------------------------------------

TEST(Keydep, FindingsAreSortedAndLintJsonIsByteStable) {
  const defense::DefenseResult r = lock("s820", "xor");
  const KeydepResult k = analyze(r);
  const auto key_of = [](const LintFinding& f) {
    return std::make_tuple(f.rule, f.cell_name, f.message);
  };
  EXPECT_TRUE(std::is_sorted(
      k.findings.begin(), k.findings.end(),
      [&](const LintFinding& x, const LintFinding& y) {
        return key_of(x) < key_of(y);
      }));

  // Two independent lock+lint runs must render byte-identical reports —
  // the stability the campaign's CSV/JSON determinism contract builds on.
  LintOptions opt;
  opt.defense = r.annotations;
  const std::string json1 = lint_json(run_lint(r.locked, opt));
  const defense::DefenseResult r2 = lock("s820", "xor");
  LintOptions opt2;
  opt2.defense = r2.annotations;
  const std::string json2 = lint_json(run_lint(r2.locked, opt2));
  EXPECT_EQ(json1, json2);
}

TEST(Keydep, LintSurfacesKeydepBlock) {
  const defense::DefenseResult r = lock("s641", "const");
  LintOptions opt;
  opt.defense = r.annotations;
  const LintReport report = run_lint(r.locked, opt);
  EXPECT_TRUE(report.keydep_ran);
  EXPECT_EQ(report.keydep.verdict(), "broken");
  EXPECT_GT(count_rule(report.findings, LintRule::kKeyConstant), 0);
  // KEY001 is a warning, not an error: annotated defenses still lint clean
  // at the error bar.
  EXPECT_EQ(report.counts.errors, 0);
}

}  // namespace
}  // namespace stt
