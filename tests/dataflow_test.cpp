// The dataflow framework (verify/dataflow): solver behavior on hand-built
// netlists plus the domain refinement chain — every fact the ternary layer
// proves must be provable in the interval and support layers — pinned on
// real locked benchmarks.
#include <gtest/gtest.h>

#include "defense/registry.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "verify/dataflow.hpp"

namespace stt {
namespace {

Netlist locked_netlist(const std::string& bench, const std::string& kind) {
  const auto profile = find_profile(bench);
  EXPECT_TRUE(profile.has_value());
  const Netlist original = generate_circuit(*profile, 7);
  const TechLibrary lib = TechLibrary::cmos90_stt();
  defense::DefenseOptions opt;
  opt.seed = 7;
  return defense::registry().apply(kind, original, lib, opt, {}).locked;
}

// -- forward ternary --------------------------------------------------------

TEST(TernaryDataflow, ConstantsPropagateAndLutOutputsAreUnknown) {
  Netlist nl("tern");
  const CellId a = nl.add_input("a");
  const CellId c0 = nl.add_gate(CellKind::kConst0, "c0", {});
  const CellId y = nl.add_gate(CellKind::kAnd, "y", {a, c0});
  const CellId l = nl.add_lut("l", {a}, 0x2);  // BUF mask — secret to the pass
  const CellId z = nl.add_gate(CellKind::kOr, "z", {l, c0});
  nl.mark_output(y);
  nl.mark_output(z);

  ForwardDataflow<TernaryDomain> solver(nl);
  const std::vector<Tri>& v = solver.solve();
  EXPECT_EQ(v[a], Tri::kX);      // primary input
  EXPECT_EQ(v[c0], Tri::kZero);  // constant source
  EXPECT_EQ(v[y], Tri::kZero);   // AND with a controlling 0
  EXPECT_EQ(v[l], Tri::kX);      // LUT mask is secret (attacker view)
  EXPECT_EQ(v[z], Tri::kX);      // OR(X, 0) = X
}

TEST(TernaryDataflow, ForceProbePinsOneCell) {
  Netlist nl("force");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId y = nl.add_gate(CellKind::kAnd, "y", {a, b});
  nl.mark_output(y);

  TernaryDomain domain;
  domain.force_cell = a;
  domain.force_value = Tri::kZero;
  ForwardDataflow<TernaryDomain> solver(nl, domain);
  const std::vector<Tri>& v = solver.solve();
  EXPECT_EQ(v[a], Tri::kZero);
  EXPECT_EQ(v[y], Tri::kZero);  // 0 controls the AND regardless of b

  TernaryDomain one = domain;
  one.force_value = Tri::kOne;
  ForwardDataflow<TernaryDomain> solver1(nl, one);
  EXPECT_EQ(solver1.solve()[y], Tri::kX);  // AND(1, X) = X
}

TEST(TernaryDataflow, DffOutputsAreUnknownSources) {
  Netlist nl("seq");
  const CellId a = nl.add_input("a");
  const CellId c1 = nl.add_gate(CellKind::kConst1, "c1", {});
  const CellId ff = nl.add_dff("ff", c1);  // driven by a constant...
  const CellId y = nl.add_gate(CellKind::kAnd, "y", {a, ff});
  nl.mark_output(y);

  ForwardDataflow<TernaryDomain> solver(nl);
  const std::vector<Tri>& v = solver.solve();
  // ...but the state bit is still a source: the forward edge is cut at the
  // D pin, so the initial-state-unknown semantics hold.
  EXPECT_EQ(v[ff], Tri::kX);
  EXPECT_EQ(v[y], Tri::kX);
}

// -- backward observability -------------------------------------------------

TEST(ObservabilityDataflow, DeadConesAreUnobservable) {
  Netlist nl("obs");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 = nl.add_gate(CellKind::kAnd, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {a, b});  // dangles
  const CellId g3 = nl.add_gate(CellKind::kNot, "g3", {b});
  const CellId ff = nl.add_dff("ff", g3);  // D pin is an observation point
  nl.mark_output(g1);

  BackwardDataflow<ObservabilityDomain> solver(nl);
  const std::vector<char>& v = solver.solve();
  EXPECT_EQ(v[g1], 1);  // primary output
  EXPECT_EQ(v[g2], 0);  // no path to any observation point
  EXPECT_EQ(v[g3], 1);  // feeds a DFF D pin
  EXPECT_EQ(v[a], 1);   // reaches g1
  EXPECT_EQ(v[ff], 0);  // the state bit itself drives nothing
}

// -- support functions ------------------------------------------------------

TEST(SupportDataflow, RedundantMuxDropsItsSelect) {
  // y = OR(AND(s, a), AND(NOT s, a)) == a: the select is functionally
  // vacuous. Ternary says X for everything; the support layer proves the
  // collapse — the strict refinement the domain chain promises.
  Netlist nl("mux");
  const CellId s = nl.add_input("s");
  const CellId a = nl.add_input("a");
  const CellId n = nl.add_gate(CellKind::kNot, "n", {s});
  const CellId t1 = nl.add_gate(CellKind::kAnd, "t1", {s, a});
  const CellId t2 = nl.add_gate(CellKind::kAnd, "t2", {n, a});
  const CellId y = nl.add_gate(CellKind::kOr, "y", {t1, t2});
  nl.mark_output(y);

  SupportDomain::CutState state;
  state.cut.assign(nl.size(), 0);
  state.absorbed.assign(nl.size(), 0);
  SupportDomain domain;
  domain.cut_state = &state;
  ForwardDataflow<SupportDomain> solver(nl, domain);
  const std::vector<SupportFunction>& v = solver.solve();

  ForwardDataflow<TernaryDomain> ternary(nl);
  EXPECT_EQ(ternary.solve()[y], Tri::kX);  // the coarse layer cannot see it

  ASSERT_EQ(v[y].vars.size(), 1u);
  EXPECT_EQ(v[y].vars[0], a);
  EXPECT_TRUE(v[y].depends_on(a));
  EXPECT_FALSE(v[y].depends_on(s));
  EXPECT_EQ(v[y].mask, 0x2u);  // identity in a
}

// -- refinement conformance on locked benchmarks ----------------------------

TEST(DataflowConformance, IntervalRefinesTernaryOnLockedBenches) {
  for (const char* kind : {"xor", "const", "parametric"}) {
    const Netlist nl = locked_netlist("s641", kind);
    ForwardDataflow<TernaryDomain> tern(nl);
    ForwardDataflow<IntervalDomain> ival(nl);
    const std::vector<Tri>& t = tern.solve();
    const std::vector<BitInterval>& v = ival.solve();
    for (CellId id = 0; id < nl.size(); ++id) {
      EXPECT_FALSE(v[id].is_bottom()) << kind << " cell " << id;
      if (t[id] != Tri::kX) {
        EXPECT_EQ(v[id].to_tri(), t[id])
            << kind << ": interval lost a ternary fact at cell "
            << nl.cell(id).name;
      }
    }
  }
}

TEST(DataflowConformance, SupportRefinesTernaryOnLockedBenches) {
  for (const char* kind : {"xor", "const", "latch"}) {
    const Netlist nl = locked_netlist("s820", kind);
    ForwardDataflow<TernaryDomain> tern(nl);
    const std::vector<Tri>& t = tern.solve();

    SupportDomain::CutState state;
    state.cut.assign(nl.size(), 0);
    state.absorbed.assign(nl.size(), 0);
    SupportDomain domain;
    domain.cut_state = &state;
    ForwardDataflow<SupportDomain> solver(nl, domain);
    const std::vector<SupportFunction>& v = solver.solve();

    for (CellId id = 0; id < nl.size(); ++id) {
      if (t[id] == Tri::kX || state.cut[id]) continue;
      // Every ternary-definite cell the support pass did not cut must be
      // the same constant function.
      ASSERT_TRUE(v[id].is_constant())
          << kind << ": support lost a ternary fact at " << nl.cell(id).name;
      EXPECT_EQ(v[id].constant_value(), t[id] == Tri::kOne);
    }
  }
}

}  // namespace
}  // namespace stt
