#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/selection.hpp"
#include "io/bench_io.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "power/power.hpp"
#include "sim/scoap.hpp"
#include "sim/simulator.hpp"
#include "sim/ternary.hpp"
#include "timing/sta.hpp"

namespace stt {
namespace {

// Externally synthesized netlists contain gates wider than the LUT-mask
// cap; the whole stack except LUT replacement must handle them.
Netlist wide_circuit() {
  std::string text = "OUTPUT(y)\nOUTPUT(z)\n";
  std::string and_args, or_args;
  for (int i = 0; i < 9; ++i) {
    text += "INPUT(i" + std::to_string(i) + ")\n";
    and_args += (i ? ", i" : "i") + std::to_string(i);
    or_args += (i ? ", i" : "i") + std::to_string(i);
  }
  text += "y = AND(" + and_args + ")\n";
  text += "z = NOR(" + or_args + ")\n";
  return read_bench(text, "wide");
}

TEST(WideGates, ParseAndValidate) {
  const Netlist nl = wide_circuit();
  EXPECT_EQ(nl.cell(nl.find("y")).fanin_count(), 9);
  EXPECT_NO_THROW(nl.check());
  EXPECT_EQ(nl.stats().max_fanin, 9);
}

TEST(WideGates, FaninBeyondGateCapRejected) {
  std::string text = "OUTPUT(y)\n";
  std::string args;
  for (int i = 0; i < kMaxGateInputs + 1; ++i) {
    text += "INPUT(i" + std::to_string(i) + ")\n";
    args += (i ? ", i" : "i") + std::to_string(i);
  }
  text += "y = AND(" + args + ")\n";
  EXPECT_THROW(read_bench(text), std::runtime_error);
}

TEST(WideGates, SimulationIsExact) {
  const Netlist nl = wide_circuit();
  const Simulator sim(nl);
  std::vector<bool> all1(9, true);
  std::vector<bool> mixed(9, true);
  mixed[4] = false;
  std::vector<bool> all0(9, false);
  EXPECT_TRUE(sim.eval_single(all1, {})[0]);    // AND
  EXPECT_FALSE(sim.eval_single(mixed, {})[0]);
  EXPECT_FALSE(sim.eval_single(all1, {})[1]);   // NOR
  EXPECT_TRUE(sim.eval_single(all0, {})[1]);
}

TEST(WideGates, TernaryKleeneRules) {
  const Netlist nl = wide_circuit();
  const TernarySimulator sim(nl);
  std::vector<Tri> in(9, Tri::kX);
  in[0] = Tri::kZero;
  const auto out = sim.outputs_of(sim.eval_comb(in, {}));
  EXPECT_EQ(out[0], Tri::kZero);  // AND with a known 0
  EXPECT_EQ(out[1], Tri::kX);     // NOR with unknowns and no known 1
  in[1] = Tri::kOne;
  const auto out2 = sim.outputs_of(sim.eval_comb(in, {}));
  EXPECT_EQ(out2[1], Tri::kZero);  // NOR with a known 1
}

TEST(WideGates, TimingPowerAreaFinite) {
  const Netlist nl = wide_circuit();
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  EXPECT_GT(t.critical_delay_ps, 0);
  EXPECT_GT(estimate_power_uniform(nl, lib, 0.1, 1.0).total_uw(), 0);
  EXPECT_GT(total_area_um2(nl, lib), 0);
}

TEST(WideGates, ScoapClosedForms) {
  const Netlist nl = wide_circuit();
  const auto r = compute_scoap(nl);
  const CellId y = nl.find("y");
  // CC1(AND9) = 9 * 1 + 1 = 10; CC0 = min + 1 = 2.
  EXPECT_DOUBLE_EQ(r.cc1[y], 10.0);
  EXPECT_DOUBLE_EQ(r.cc0[y], 2.0);
  // CO of an input through the AND = 0 + 8 side CC1s + 1 = 9.
  EXPECT_DOUBLE_EQ(r.co[nl.find("i0")],
                   std::min(9.0, 1.0 + 8.0 * 1.0));  // AND vs NOR route
}

TEST(WideGates, SatEncodingMatchesSimulation) {
  const Netlist nl = wide_circuit();
  EXPECT_TRUE(comb_equivalent(nl, nl));
  // And an inequivalent wide variant is detected.
  Netlist other = wide_circuit();
  // Flip the NOR into an OR by rebuilding it.
  Netlist changed = read_bench(write_bench(other), "w2");
  changed.cell(changed.find("z")).kind = CellKind::kOr;
  EXPECT_FALSE(comb_equivalent(nl, changed));
}

TEST(WideGates, LutReplacementRefused) {
  Netlist nl = wide_circuit();
  EXPECT_THROW(nl.replace_with_lut(nl.find("y")), std::runtime_error);
}

TEST(WideGates, SelectionSkipsThem) {
  Netlist nl = wide_circuit();
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions opt;
  opt.indep_count = 50;  // ask for more than exists
  const auto result = selector.run(nl, SelectionAlgorithm::kIndependent, opt);
  EXPECT_TRUE(result.replaced.empty());  // nothing replaceable here
}

TEST(WideGates, FormatRoundtrips) {
  const Netlist nl = wide_circuit();
  const Netlist b = read_bench(write_bench(nl), "w");
  EXPECT_TRUE(comb_equivalent(nl, b));
  const Netlist v = read_verilog(write_verilog(nl), "w");
  EXPECT_TRUE(comb_equivalent(nl, v));
  const Netlist f = read_blif(write_blif(nl), "w");
  EXPECT_TRUE(comb_equivalent(nl, f));
  EXPECT_EQ(f.cell(f.find("y")).kind, CellKind::kAnd);
  EXPECT_EQ(f.cell(f.find("z")).kind, CellKind::kNor);
}

TEST(WideGates, BlifWideXorRejectedDescriptively) {
  std::string text = "OUTPUT(y)\n";
  std::string args;
  for (int i = 0; i < 8; ++i) {
    text += "INPUT(i" + std::to_string(i) + ")\n";
    args += (i ? ", i" : "i") + std::to_string(i);
  }
  text += "y = XOR(" + args + ")\n";
  const Netlist nl = read_bench(text);
  EXPECT_THROW(write_blif(nl), std::runtime_error);
}

}  // namespace
}  // namespace stt
