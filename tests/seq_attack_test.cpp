#include <gtest/gtest.h>

#include "attack/seq_attack.hpp"
#include "core/selection.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Check two netlists behave identically from reset over random sequences.
bool sequences_match(const Netlist& a, const Netlist& b, int cycles,
                     std::uint64_t seed) {
  SequentialSimulator sa(a);
  SequentialSimulator sb(b);
  sa.reset(false);
  sb.reset(false);
  Rng rng(seed);
  std::vector<std::uint64_t> pi(a.inputs().size());
  for (int t = 0; t < cycles; ++t) {
    for (auto& w : pi) w = rng();
    if (sa.step(pi) != sb.step(pi)) return false;
  }
  return true;
}

TEST(SequenceOracle, ReturnsPerCycleOutputs) {
  const Netlist nl = embedded_netlist("count2");
  SequenceOracle oracle(nl);
  // en=1, clr=0 for three cycles: q counts 0,1,2.
  const std::vector<std::vector<bool>> seq(3, {true, false});
  const auto out = oracle.query(seq);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(out[0][0]);  // q0=0
  EXPECT_FALSE(out[0][1]);  // q1=0
  EXPECT_TRUE(out[1][0]);   // q=1
  EXPECT_FALSE(out[1][1]);
  EXPECT_FALSE(out[2][0]);  // q=2
  EXPECT_TRUE(out[2][1]);
  EXPECT_EQ(oracle.cycles(), 3u);
}

TEST(SequenceOracle, EachQueryStartsFromReset) {
  const Netlist nl = embedded_netlist("count2");
  SequenceOracle oracle(nl);
  const std::vector<std::vector<bool>> seq(2, {true, false});
  const auto first = oracle.query(seq);
  const auto second = oracle.query(seq);
  EXPECT_EQ(first, second);
}

TEST(SequenceOracle, SizeMismatchThrows) {
  const Netlist nl = embedded_netlist("count2");
  SequenceOracle oracle(nl);
  EXPECT_THROW(oracle.query({{true}}), std::invalid_argument);
}

TEST(SeqSatAttack, ThrowsWithoutLuts) {
  const Netlist nl = embedded_netlist("s27");
  EXPECT_THROW(run_sequential_sat_attack(nl, nl), std::invalid_argument);
}

TEST(SeqSatAttack, RecoversShallowLockWithFewFrames) {
  // Lock a gate whose output is combinationally visible: one frame worth
  // of unrolling already distinguishes keys.
  Netlist original = embedded_netlist("count2");
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("t0"));   // XOR feeding d0
  hybrid.replace_with_lut(hybrid.find("nclr"));
  const Netlist view = foundry_view(hybrid);

  SeqAttackOptions opt;
  opt.frames = 4;
  const auto result = run_sequential_sat_attack(view, original, opt);
  ASSERT_TRUE(result.success());
  Netlist recovered = view;
  apply_key(recovered, result.key);
  EXPECT_TRUE(sequences_match(recovered, original, 64, 5));
}

TEST(SeqSatAttack, RecoversIndependentLockOnS27) {
  const Netlist original = embedded_netlist("s27");
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 3;
  sopt.indep_count = 3;
  (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, sopt);

  SeqAttackOptions opt;
  opt.frames = 6;
  const auto result =
      run_sequential_sat_attack(foundry_view(hybrid), original, opt);
  ASSERT_TRUE(result.success());
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, result.key);
  EXPECT_TRUE(sequences_match(recovered, original, 128, 11));
  EXPECT_GT(result.queries, 0u);
}

TEST(SeqSatAttack, TooFewFramesYieldsDegenerateKey) {
  // A LUT buried behind a flip-flop chain deeper than the unrolling cannot
  // influence any observable output within the horizon, so the attack
  // "succeeds" vacuously but the key may be wrong on longer runs — the
  // depth-D protection of Eqs. (1)-(3) in executable form.
  Netlist nl("deep");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kXor, "g", {a, b});
  CellId prev = g;
  for (int i = 0; i < 4; ++i) {
    prev = nl.add_dff("ff" + std::to_string(i), prev);
  }
  const CellId o = nl.add_gate(CellKind::kOr, "o", {prev, a});
  nl.mark_output(o);
  nl.finalize();

  Netlist hybrid = nl;
  hybrid.replace_with_lut(g);

  SeqAttackOptions shallow;
  shallow.frames = 2;  // < 4 flip-flops of depth: g is invisible
  const auto blind =
      run_sequential_sat_attack(foundry_view(hybrid), nl, shallow);
  ASSERT_TRUE(blind.success());
  EXPECT_EQ(blind.iterations, 0);  // no distinguishing sequence exists

  SeqAttackOptions deep;
  deep.frames = 8;
  const auto sighted =
      run_sequential_sat_attack(foundry_view(hybrid), nl, deep);
  ASSERT_TRUE(sighted.success());
  EXPECT_GT(sighted.iterations, 0);
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, sighted.key);
  EXPECT_TRUE(sequences_match(recovered, nl, 64, 17));
}

TEST(SeqSatAttack, BudgetsHonoured) {
  const CircuitProfile profile{"seqcap", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, 9);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 9;
  (void)selector.run(hybrid, SelectionAlgorithm::kDependent, sopt);

  SeqAttackOptions opt;
  opt.frames = 3;
  opt.max_iterations = 1;
  const auto result =
      run_sequential_sat_attack(foundry_view(hybrid), original, opt);
  if (!result.success()) {
    EXPECT_TRUE(result.budget_exhausted() || result.timed_out());
  }
}

}  // namespace
}  // namespace stt
