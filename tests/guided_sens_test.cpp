#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "attack/guided_sens.hpp"
#include "attack/sensitization.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(GuidedSens, TrivialWithoutLuts) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  const auto result = run_guided_sensitization(nl, oracle);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.queries, 0u);
}

TEST(GuidedSens, ResolvesIsolatedLutExactly) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kNor, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g);

  ScanOracle oracle(nl);
  const auto result = run_guided_sensitization(hybrid, oracle);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(result.key.at("g"), gate_truth_mask(CellKind::kNor, 2));
  // Directed patterns: exactly one oracle query per truth-table row.
  EXPECT_EQ(result.queries, 4u);
}

TEST(GuidedSens, FarFewerPatternsThanRandomSensitization) {
  const CircuitProfile profile{"gs", 10, 8, 6, 150, 8};
  const Netlist original = generate_circuit(profile, 3);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 3;
  sopt.indep_count = 4;
  (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, sopt);

  ScanOracle o1(original);
  const auto guided = run_guided_sensitization(hybrid, o1);

  ScanOracle o2(original);
  SensitizationOptions ropt;
  ropt.query_budget = 20000;
  const auto random = run_sensitization_attack(hybrid, o2, ropt);

  EXPECT_GE(guided.rows_resolved, random.rows_resolved);
  if (guided.rows_resolved > 0 && random.rows_resolved > 0) {
    EXPECT_LT(guided.queries, random.queries);
  }
  // Every resolved row costs exactly one query in the guided attack.
  EXPECT_EQ(guided.queries,
            static_cast<std::uint64_t>(guided.rows_resolved));
}

TEST(GuidedSens, RecoveredKeyIsFunctionallyCorrect) {
  // Rows the SAT query proves unreachable are functional don't-cares
  // (whenever the row is justified, the LUT output provably influences no
  // observable), so as long as every row is either resolved or proven
  // unreachable, the recovered key is scan-view equivalent.
  int verified = 0;
  for (const int seed : {5, 6, 7, 8}) {
    const CircuitProfile profile{"gs2", 8, 8, 5, 100, 7};
    const Netlist original = generate_circuit(profile, seed);
    Netlist hybrid = original;
    GateSelector selector(TechLibrary::cmos90_stt());
    SelectionOptions sopt;
    sopt.seed = seed;
    sopt.indep_count = 3;
    (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, sopt);

    ScanOracle oracle(original);
    const auto result = run_guided_sensitization(hybrid, oracle);
    if (result.rows_resolved + result.rows_proven_unreachable !=
        result.rows_total) {
      continue;  // postponed rows (chained LUTs): no completeness claim
    }
    Netlist recovered = foundry_view(hybrid);
    apply_key(recovered, result.key);
    EXPECT_TRUE(comb_equivalent(recovered, original)) << "seed " << seed;
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(GuidedSens, DependentChainIsProvenUnreachable) {
  // LUT -> LUT chain on the only output: the second LUT's rows cannot be
  // justified (driver unknown), and the first LUT's output cannot be
  // propagated around the second — the SAT query must prove it.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kNor, "g2", {g1, c});
  nl.mark_output(g2);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g1);
  hybrid.replace_with_lut(g2);

  ScanOracle oracle(nl);
  const auto result = run_guided_sensitization(hybrid, oracle);
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.rows_resolved, 0);
  EXPECT_EQ(result.luts_resolved, 0);
  // g1's rows were attempted and formally proven unreachable.
  EXPECT_GT(result.rows_proven_unreachable, 0);
  EXPECT_EQ(result.queries, 0u);
}

TEST(GuidedSens, ResolvesChainWhenSideObservationExists) {
  // Like the chain, but g1 also drives an extra observable: the guided
  // attack resolves g1 through the side exit, then g2 becomes justifiable.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kNor, "g2", {g1, c});
  const CellId side = nl.add_gate(CellKind::kXor, "side", {g1, c});
  nl.mark_output(g2);
  nl.mark_output(side);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g1);
  hybrid.replace_with_lut(g2);

  ScanOracle oracle(nl);
  const auto result = run_guided_sensitization(hybrid, oracle);
  ASSERT_TRUE(result.success());
  EXPECT_EQ(result.key.at("g1"), gate_truth_mask(CellKind::kNand, 2));
  EXPECT_EQ(result.key.at("g2"), gate_truth_mask(CellKind::kNor, 2));
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, result.key);
  EXPECT_TRUE(comb_equivalent(recovered, nl));
}

}  // namespace
}  // namespace stt
