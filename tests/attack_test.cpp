#include <gtest/gtest.h>

#include "attack/brute_force.hpp"
#include "attack/encode.hpp"
#include "attack/sat_attack.hpp"
#include "attack/sensitization.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

const TechLibrary& lib() {
  static const TechLibrary kLib = TechLibrary::cmos90_stt();
  return kLib;
}

// Lock a circuit with the given algorithm; returns (original, hybrid).
std::pair<Netlist, Netlist> lock(const Netlist& original,
                                 SelectionAlgorithm alg, std::uint64_t seed,
                                 int indep_count = 5) {
  Netlist hybrid = original;
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = seed;
  opt.indep_count = indep_count;
  (void)selector.run(hybrid, alg, opt);
  return {original, hybrid};
}

TEST(ScanOracle, CountsQueriesAndChecksSizes) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  EXPECT_EQ(oracle.num_inputs(), 7u);   // 4 PI + 3 FF
  EXPECT_EQ(oracle.num_outputs(), 4u);  // 1 PO + 3 FF
  EXPECT_EQ(oracle.queries(), 0u);
  (void)oracle.query(std::vector<bool>(7, false));
  EXPECT_EQ(oracle.queries(), 1u);
  EXPECT_THROW(oracle.query(std::vector<bool>(3, false)),
               std::invalid_argument);
}

TEST(ScanOracle, MatchesSimulatorSemantics) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  const auto out = oracle.query(std::vector<bool>(7, false));
  // From the hand-computed s27 vector: G17=1, next state (G10,G11,G13) =
  // (0,0,0).
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(out[0]);
  EXPECT_FALSE(out[1]);
  EXPECT_FALSE(out[2]);
  EXPECT_FALSE(out[3]);
}

TEST(SatAttack, ThrowsWithoutLuts) {
  const Netlist nl = embedded_netlist("s27");
  EXPECT_THROW(run_sat_attack(nl, nl), std::invalid_argument);
}

TEST(SatAttack, RecoversIndependentLockOnS27) {
  const auto [original, hybrid] =
      lock(embedded_netlist("s27"), SelectionAlgorithm::kIndependent, 3);
  const Netlist attacker_view = foundry_view(hybrid);
  const auto result = run_sat_attack(attacker_view, original);
  ASSERT_TRUE(result.success());
  EXPECT_GT(result.iterations, 0);

  // The recovered key need not equal the planted key bit-for-bit (don't-
  // care rows), but applying it must yield a functionally equivalent chip.
  Netlist recovered = attacker_view;
  apply_key(recovered, result.key);
  EXPECT_TRUE(comb_equivalent(recovered, original));
}

TEST(SatAttack, RecoversDependentLockOnSmallCircuit) {
  // The SAT attack (with scan access) also defeats dependent selection on
  // small circuits — consistent with the paper's position that these
  // defenses presume a locked/disabled scan chain.
  const CircuitProfile profile{"sat-dep", 6, 5, 4, 60, 6};
  const Netlist original = generate_circuit(profile, 11);
  const auto [orig, hybrid] = lock(original, SelectionAlgorithm::kDependent, 5);
  const auto result = run_sat_attack(foundry_view(hybrid), orig);
  ASSERT_TRUE(result.success());
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, result.key);
  EXPECT_TRUE(comb_equivalent(recovered, orig));
}

TEST(SatAttack, BudgetCapsAreHonoured) {
  const CircuitProfile profile{"sat-cap", 8, 6, 6, 150, 8};
  const Netlist original = generate_circuit(profile, 13);
  const auto [orig, hybrid] =
      lock(original, SelectionAlgorithm::kParametric, 7);
  SatAttackOptions opt;
  opt.max_iterations = 1;  // absurdly small: must stop early, not hang
  const auto result = run_sat_attack(foundry_view(hybrid), orig, opt);
  if (!result.success()) {
    EXPECT_TRUE(result.budget_exhausted() || result.timed_out());
    EXPECT_LE(result.iterations, 1);
  }
}

TEST(SatAttack, MoreLutsNeedMoreIterations) {
  const CircuitProfile profile{"sat-grow", 8, 6, 6, 150, 8};
  const Netlist original = generate_circuit(profile, 17);
  const auto [o1, small] = lock(original, SelectionAlgorithm::kIndependent, 3, 2);
  const auto [o2, large] = lock(original, SelectionAlgorithm::kIndependent, 3, 14);
  const auto r_small = run_sat_attack(foundry_view(small), original);
  const auto r_large = run_sat_attack(foundry_view(large), original);
  ASSERT_TRUE(r_small.success());
  ASSERT_TRUE(r_large.success());
  EXPECT_GE(r_large.iterations, r_small.iterations);
}

TEST(SatAttack, PrunedAndNaiveRecoverEquivalentKeys) {
  const CircuitProfile profile{"sat-eq", 7, 5, 5, 110, 7};
  const Netlist original = generate_circuit(profile, 23);
  const auto [orig, hybrid] = lock(original, SelectionAlgorithm::kDependent, 9);
  const Netlist view = foundry_view(hybrid);

  SatAttackOptions pruned;
  SatAttackOptions naive;
  naive.cone_pruning = false;
  const auto rp = run_sat_attack(view, orig, pruned);
  const auto rn = run_sat_attack(view, orig, naive);
  ASSERT_TRUE(rp.success());
  ASSERT_TRUE(rn.success());

  // Keys may differ on don't-care rows; both must be functionally correct.
  for (const auto* r : {&rp, &rn}) {
    Netlist recovered = view;
    apply_key(recovered, r->key);
    EXPECT_TRUE(comb_equivalent(recovered, orig));
  }
  // The tentpole claim: per-iteration CNF growth is much smaller pruned.
  if (rp.iterations > 0 && rn.iterations > 0) {
    EXPECT_LT(rp.stats.cnf_clauses_per_iter, rn.stats.cnf_clauses_per_iter);
  }
}

TEST(SatAttack, PortfolioSizeDoesNotChangeResult) {
  const CircuitProfile profile{"sat-port", 7, 5, 5, 110, 7};
  const Netlist original = generate_circuit(profile, 29);
  const auto [orig, hybrid] =
      lock(original, SelectionAlgorithm::kParametric, 11);
  const Netlist view = foundry_view(hybrid);

  SatAttackOptions solo;
  solo.portfolio = 1;
  SatAttackOptions trio;
  trio.portfolio = 3;
  const auto r1 = run_sat_attack(view, orig, solo);
  const auto r3 = run_sat_attack(view, orig, trio);
  ASSERT_TRUE(r1.success());
  ASSERT_TRUE(r3.success());
  EXPECT_EQ(r1.iterations, r3.iterations);
  EXPECT_EQ(r1.queries, r3.queries);
  EXPECT_EQ(r1.key, r3.key);
  EXPECT_EQ(r3.stats.portfolio, 3);
}

TEST(SatAttack, WarmupResolvesKeyRowsBeforeDipLoop) {
  // Sparse independent LUTs in a larger circuit: some output cones fold to
  // single key literals under random patterns, so the warm-up harvests
  // unit key bits. (On tiny dense locks every cone stays complex and the
  // warm-up legitimately resolves nothing.)
  const CircuitProfile profile{"sat-warm", 8, 6, 5, 140, 8};
  const Netlist original = generate_circuit(profile, 37);
  const auto [orig, hybrid] =
      lock(original, SelectionAlgorithm::kIndependent, 19, 3);
  SatAttackOptions opt;
  opt.warmup_words = 4;
  const auto with = run_sat_attack(foundry_view(hybrid), orig, opt);
  ASSERT_TRUE(with.success());
  EXPECT_GT(with.stats.key_rows_resolved, 0);

  opt.warmup_words = 0;
  const auto without = run_sat_attack(foundry_view(hybrid), orig, opt);
  ASSERT_TRUE(without.success());
  // Warm-up trades cheap word-parallel queries for DIP iterations.
  EXPECT_LE(with.iterations, without.iterations);

  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, with.key);
  EXPECT_TRUE(comb_equivalent(recovered, orig));
}

TEST(SatAttack, TimeLimitIsHonoredInsideSolves) {
  const CircuitProfile profile{"sat-tl", 10, 8, 8, 400, 10};
  const Netlist original = generate_circuit(profile, 31);
  const auto [orig, hybrid] =
      lock(original, SelectionAlgorithm::kDependent, 13);
  SatAttackOptions opt;
  opt.time_limit_s = 0.0;  // expires immediately; must not run away
  opt.warmup_words = 0;
  const auto result = run_sat_attack(foundry_view(hybrid), orig, opt);
  if (!result.success()) {
    EXPECT_TRUE(result.timed_out());
    // Deadline checks are per conflict batch: overshoot stays tiny even
    // though the limit lands mid-solve.
    EXPECT_LT(result.elapsed_s, 5.0);
  }
}

TEST(Sensitization, ResolvesIsolatedLut) {
  // One LUT, fully controllable and observable: the testing attack must
  // rebuild its truth table.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kXor, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g);

  ScanOracle oracle(nl);
  const auto result = run_sensitization_attack(hybrid, oracle);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.rows_resolved, 4);
  EXPECT_EQ(result.key.at("g"), gate_truth_mask(CellKind::kXor, 2));
}

TEST(Sensitization, IndependentLocksMostlyResolve) {
  // A single lock instance can by chance pick adjacent or poorly
  // observable gates, so aggregate over several locks: on average a
  // substantial share of independent-lock rows falls to testing.
  int rows_total = 0;
  int rows_resolved = 0;
  int luts_resolved = 0;
  for (const int seed : {23, 24, 25}) {
    const CircuitProfile profile{"sens-i", 8, 8, 5, 100, 6};
    const Netlist original = generate_circuit(profile, seed);
    const auto [orig, hybrid] =
        lock(original, SelectionAlgorithm::kIndependent, 9 + seed, 3);
    ScanOracle oracle(orig);
    SensitizationOptions opt;
    opt.query_budget = 20000;
    const auto result = run_sensitization_attack(hybrid, oracle, opt);
    rows_total += result.rows_total;
    rows_resolved += result.rows_resolved;
    luts_resolved += result.luts_resolved;
  }
  EXPECT_GT(rows_resolved, rows_total / 4);
  EXPECT_GT(luts_resolved, 0);
}

TEST(Sensitization, DependentChainBlocksResolution) {
  // Hand-built chain: LUT1 feeds LUT2 feeds the only PO. Justifying LUT2's
  // input requires knowing LUT1, and observing LUT1 requires knowing LUT2:
  // the paper's argument for dependent selection, executable.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kNor, "g2", {g1, c});
  nl.mark_output(g2);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g1);
  hybrid.replace_with_lut(g2);

  ScanOracle oracle(nl);
  SensitizationOptions opt;
  opt.query_budget = 4000;
  const auto result = run_sensitization_attack(hybrid, oracle, opt);
  EXPECT_FALSE(result.success());
  // Neither LUT can be completed through the other unknown.
  EXPECT_EQ(result.luts_resolved, 0);
}

TEST(Sensitization, NoLutsSucceedsTrivially) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  const auto result = run_sensitization_attack(nl, oracle);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.queries, 0u);
}

TEST(BruteForce, RecoversStandardGateLock) {
  const auto [original, hybrid] =
      lock(embedded_netlist("s27"), SelectionAlgorithm::kIndependent, 5, 3);
  ScanOracle oracle(original);
  const auto result = run_brute_force(foundry_view(hybrid), oracle);
  ASSERT_TRUE(result.success());
  Netlist recovered = foundry_view(hybrid);
  apply_key(recovered, result.key);
  EXPECT_TRUE(comb_equivalent(recovered, original));
  EXPECT_GT(result.combinations_tried, 0u);
}

TEST(BruteForce, SearchSpaceMatchesCandidateProduct) {
  const auto [original, hybrid] =
      lock(embedded_netlist("s27"), SelectionAlgorithm::kIndependent, 5, 4);
  ScanOracle oracle(original);
  BruteForceOptions opt;
  opt.work_budget = 1;  // only care about the bookkeeping
  const auto result = run_brute_force(foundry_view(hybrid), oracle, opt);
  // Each replaced cell contributes 6 (fan-in >= 2) or 2 (fan-in 1)
  // candidates; the product's log must match.
  double expect_log = 0;
  for (CellId id = 0; id < hybrid.size(); ++id) {
    if (hybrid.cell(id).kind != CellKind::kLut) continue;
    expect_log +=
        std::log10(hybrid.cell(id).fanin_count() >= 2 ? 6.0 : 2.0);
  }
  EXPECT_NEAR(result.search_space.log10(), expect_log, 1e-9);
}

TEST(BruteForce, BudgetExhaustionReported) {
  const CircuitProfile profile{"bf-cap", 8, 6, 5, 120, 8};
  const Netlist original = generate_circuit(profile, 29);
  const auto [orig, hybrid] =
      lock(original, SelectionAlgorithm::kIndependent, 11, 10);
  ScanOracle oracle(orig);
  BruteForceOptions opt;
  opt.work_budget = 3;
  const auto result = run_brute_force(foundry_view(hybrid), oracle, opt);
  if (!result.success()) {
    EXPECT_TRUE(result.budget_exhausted());
    EXPECT_EQ(result.combinations_tried, 3u);
  }
}

TEST(BruteForce, NoLutsTrivial) {
  const Netlist nl = embedded_netlist("s27");
  ScanOracle oracle(nl);
  const auto result = run_brute_force(nl, oracle);
  EXPECT_TRUE(result.success());
  EXPECT_EQ(result.combinations_tried, 0u);
}

TEST(AttackOrdering, SensitizationWeakerThanSat) {
  // On a dependent lock the sensitization attack stalls while the SAT
  // attack (scan access) still succeeds — matching the paper's layered
  // threat discussion.
  const CircuitProfile profile{"order", 6, 5, 4, 70, 6};
  const Netlist original = generate_circuit(profile, 31);
  const auto [orig, hybrid] = lock(original, SelectionAlgorithm::kDependent, 13);

  ScanOracle o1(orig);
  SensitizationOptions sopt;
  sopt.query_budget = 3000;
  const auto sens = run_sensitization_attack(hybrid, o1, sopt);

  const auto sat = run_sat_attack(foundry_view(hybrid), orig);
  EXPECT_TRUE(sat.success());
  EXPECT_LE(sens.rows_resolved, sens.rows_total);
  if (sens.success()) {
    // If sensitization did fully succeed the chain was shallow; at minimum
    // SAT must not have been harder than enumeration of all rows.
    EXPECT_GT(sens.queries, 0u);
  }
}

}  // namespace
}  // namespace stt
