// Tests for the campaign engine: thread-pool lifecycle, job-graph
// dependency ordering / failure containment / cancellation, seed
// derivation, retry policy, and the campaign determinism contract
// (--jobs 1 vs --jobs 8 byte-identical results).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/job.hpp"
#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"
#include "util/stats.hpp"

namespace stt {
namespace {

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_EQ(pool.stats().executed, 100u);
  EXPECT_EQ(pool.stats().discarded, 0u);
}

TEST(ThreadPoolTest, DrainShutdownFinishesPendingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        counter.fetch_add(1);
      });
    }
    pool.shutdown(ThreadPool::Shutdown::kDrain);
    EXPECT_EQ(pool.stats().executed, 50u);
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DiscardShutdownUnderPendingWorkDoesNotHang) {
  std::atomic<int> counter{0};
  ThreadPool pool(2);
  for (int i = 0; i < 200; ++i) {
    pool.submit([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  }
  pool.shutdown(ThreadPool::Shutdown::kDiscard);
  const auto stats = pool.stats();
  // Everything is accounted for: ran or was discarded, nothing lost.
  EXPECT_EQ(stats.executed + stats.discarded, 200u);
  EXPECT_EQ(static_cast<std::uint64_t>(counter.load()), stats.executed);
  // wait_idle() must return immediately after a discarding shutdown.
  pool.wait_idle();
  // Submitting after shutdown is an error, not a silent drop.
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrains) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 30; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(JobGraphTest, RespectsDependencyOrdering) {
  // Diamond: a -> {b, c} -> d. Record a global arrival index per job.
  ThreadPool pool(4);
  JobGraph graph;
  std::atomic<int> clock{0};
  int order[4] = {-1, -1, -1, -1};
  const JobId a = graph.add("a", [&](JobContext&) { order[0] = clock++; });
  const JobId b =
      graph.add("b", [&](JobContext&) { order[1] = clock++; }, {a});
  const JobId c =
      graph.add("c", [&](JobContext&) { order[2] = clock++; }, {a});
  const JobId d =
      graph.add("d", [&](JobContext&) { order[3] = clock++; }, {b, c});
  graph.run(pool);
  EXPECT_EQ(graph.state(a), JobState::kSucceeded);
  EXPECT_EQ(graph.state(d), JobState::kSucceeded);
  EXPECT_LT(order[0], order[1]);
  EXPECT_LT(order[0], order[2]);
  EXPECT_LT(order[1], order[3]);
  EXPECT_LT(order[2], order[3]);
}

TEST(JobGraphTest, FailureCancelsOnlyTransitiveDependents) {
  ThreadPool pool(2);
  JobGraph graph;
  std::atomic<bool> sibling_ran{false};
  const JobId bad =
      graph.add("bad", [](JobContext&) { throw std::runtime_error("boom"); });
  const JobId child = graph.add("child", [](JobContext&) {}, {bad});
  const JobId grandchild = graph.add("grandchild", [](JobContext&) {}, {child});
  const JobId sibling =
      graph.add("sibling", [&](JobContext&) { sibling_ran = true; });
  graph.run(pool);
  EXPECT_EQ(graph.state(bad), JobState::kFailed);
  EXPECT_EQ(graph.record(bad).error, "boom");
  EXPECT_EQ(graph.state(child), JobState::kCancelled);
  EXPECT_NE(graph.record(child).error.find("bad"), std::string::npos);
  EXPECT_EQ(graph.state(grandchild), JobState::kCancelled);
  EXPECT_EQ(graph.state(sibling), JobState::kSucceeded);
  EXPECT_TRUE(sibling_ran.load());
}

TEST(JobGraphTest, CancelBeforeRunPropagatesToDependents) {
  ThreadPool pool(2);
  JobGraph graph;
  std::atomic<bool> ran{false};
  const JobId a = graph.add("a", [&](JobContext&) { ran = true; });
  const JobId b = graph.add("b", [&](JobContext&) { ran = true; }, {a});
  const JobId other = graph.add("other", [](JobContext&) {});
  graph.cancel(a);
  graph.run(pool);
  EXPECT_EQ(graph.state(a), JobState::kCancelled);
  EXPECT_EQ(graph.state(b), JobState::kCancelled);
  EXPECT_EQ(graph.state(other), JobState::kSucceeded);
  EXPECT_FALSE(ran.load());
}

TEST(JobGraphTest, CooperativeCancellationDuringRun) {
  ThreadPool pool(2);
  JobGraph graph;
  std::atomic<bool> started{false};
  std::atomic<bool> observed_cancel{false};
  const JobId spinner = graph.add("spinner", [&](JobContext& ctx) {
    started = true;
    while (!ctx.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    observed_cancel = true;
  });
  std::thread canceller([&] {
    while (!started) std::this_thread::sleep_for(std::chrono::milliseconds(1));
    graph.cancel(spinner);
  });
  graph.run(pool);
  canceller.join();
  EXPECT_TRUE(observed_cancel.load());
  EXPECT_EQ(graph.state(spinner), JobState::kCancelled);
}

TEST(CampaignSeedTest, DistinguishesEveryCoordinate) {
  const std::uint64_t base = campaign_seed(1, "s641", 1, 0, 0, 0);
  EXPECT_NE(base, campaign_seed(2, "s641", 1, 0, 0, 0));   // master
  EXPECT_NE(base, campaign_seed(1, "s1238", 1, 0, 0, 0));  // benchmark
  EXPECT_NE(base, campaign_seed(1, "s641", 0, 0, 0, 0));   // stage
  EXPECT_NE(base, campaign_seed(1, "s641", 1, 1, 0, 0));   // algorithm
  EXPECT_NE(base, campaign_seed(1, "s641", 1, 0, 1, 0));   // trial
  EXPECT_NE(base, campaign_seed(1, "s641", 1, 0, 0, 1));   // attempt
  // Stable across calls and processes (pure function of its inputs).
  EXPECT_EQ(base, campaign_seed(1, "s641", 1, 0, 0, 0));
}

TEST(RetryTest, SeedBackoffRetriesUntilSuccess) {
  std::vector<std::uint64_t> seeds_seen;
  const auto outcome = run_with_seed_backoff(
      5, [](int attempt) { return 100u + static_cast<unsigned>(attempt); },
      [&seeds_seen](std::uint64_t seed, int attempt) {
        seeds_seen.push_back(seed);
        if (attempt < 2) throw std::runtime_error("infeasible");
      });
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3);
  ASSERT_EQ(seeds_seen.size(), 3u);
  // Each attempt re-derives a fresh seed — backoff in seed space.
  EXPECT_EQ(seeds_seen[0], 100u);
  EXPECT_EQ(seeds_seen[1], 101u);
  EXPECT_EQ(seeds_seen[2], 102u);
}

TEST(RetryTest, BoundedAttemptsRecordLastError) {
  const auto outcome = run_with_seed_backoff(
      3, [](int) { return 0u; },
      [](std::uint64_t, int) { throw std::runtime_error("always"); });
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.attempts, 3);
  EXPECT_EQ(outcome.error, "always");
}

TEST(AccumulatorTest, MergeMatchesSerialAccumulation) {
  Accumulator serial, left, right;
  for (int i = 0; i < 10; ++i) {
    const double x = i * 1.5 - 3.0;
    serial.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), serial.count());
  EXPECT_NEAR(left.mean(), serial.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), serial.variance(), 1e-12);
  EXPECT_EQ(left.min(), serial.min());
  EXPECT_EQ(left.max(), serial.max());
}

TEST(ShardedAccumulatorTest, CombinesAcrossThreads) {
  ShardedAccumulator sharded(4);
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < 4; ++s) {
    threads.emplace_back([&sharded, s] {
      for (int i = 0; i < 1000; ++i) {
        sharded.add(s, static_cast<double>(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Accumulator total = sharded.combined();
  EXPECT_EQ(total.count(), 4000u);
  EXPECT_NEAR(total.mean(), 499.5, 1e-9);
}

CampaignSpec small_spec(unsigned jobs) {
  CampaignSpec spec;
  spec.benchmarks = {"s641", "s820"};  // the two smallest Table I circuits
  spec.algorithms = {SelectionAlgorithm::kIndependent,
                     SelectionAlgorithm::kParametric};
  spec.trials = 2;
  spec.jobs = jobs;
  return spec;
}

TEST(CampaignTest, ParallelRunIsByteIdenticalToSerial) {
  const CampaignReport serial = run_campaign(small_spec(1));
  const CampaignReport parallel = run_campaign(small_spec(8));
  ASSERT_EQ(serial.rows.size(), 8u);
  ASSERT_EQ(parallel.rows.size(), 8u);
  // The deterministic views must match byte for byte; the runtime profile
  // is excluded by construction.
  EXPECT_EQ(campaign_results_csv(serial), campaign_results_csv(parallel));
  EXPECT_EQ(campaign_json(serial, /*include_profile=*/false),
            campaign_json(parallel, /*include_profile=*/false));
  EXPECT_EQ(parallel.profile.threads, 8u);
  for (const CampaignRow& row : serial.rows) {
    EXPECT_TRUE(row.ok) << row.benchmark << ": " << row.error;
    EXPECT_GT(row.num_luts, 0);
  }
}

TEST(CampaignTest, TrialsGetDistinctSeeds) {
  const CampaignReport report = run_campaign(small_spec(2));
  // Same benchmark+algorithm, different trials -> different seeds and
  // (with overwhelming probability) different selections.
  const CampaignRow* t0 = nullptr;
  const CampaignRow* t1 = nullptr;
  for (const CampaignRow& row : report.rows) {
    if (row.benchmark == "s641" &&
        row.algorithm == SelectionAlgorithm::kParametric) {
      (row.trial == 0 ? t0 : t1) = &row;
    }
  }
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  EXPECT_NE(t0->selection_seed, t1->selection_seed);
  EXPECT_NE(t0->circuit_seed, t1->circuit_seed);
}

TEST(CampaignTest, UnknownBenchmarkThrowsBeforeRunning) {
  CampaignSpec spec = small_spec(1);
  spec.benchmarks = {"not_a_circuit"};
  EXPECT_THROW(run_campaign(spec), std::invalid_argument);
}

TEST(CampaignTest, ReportsProgressOncePerRow) {
  CampaignSpec spec = small_spec(4);
  std::atomic<std::size_t> ticks{0};
  std::size_t last_total = 0;
  std::mutex m;
  spec.on_progress = [&](std::size_t done, std::size_t total,
                         const std::string&) {
    std::lock_guard lock(m);
    ++ticks;
    EXPECT_LE(done, total);
    last_total = total;
  };
  const CampaignReport report = run_campaign(spec);
  EXPECT_EQ(ticks.load(), report.rows.size());
  EXPECT_EQ(last_total, report.rows.size());
}

TEST(CampaignTest, DefenseAttackMatrixIsByteIdenticalAcrossJobs) {
  CampaignSpec spec;
  spec.benchmarks = {"s641"};
  spec.defenses = {{"xor", {{"count", "4"}}}, {"latch", {{"count", "3"}}}};
  spec.attacks = {"sat", "none"};
  spec.trials = 1;
  spec.jobs = 1;
  const CampaignReport serial = run_campaign(spec);
  spec.jobs = 8;
  const CampaignReport parallel = run_campaign(spec);
  ASSERT_EQ(serial.rows.size(), 4u);
  EXPECT_EQ(campaign_results_csv(serial), campaign_results_csv(parallel));
  EXPECT_EQ(campaign_json(serial, /*include_profile=*/false),
            campaign_json(parallel, /*include_profile=*/false));
  for (const CampaignRow& row : serial.rows) {
    EXPECT_TRUE(row.ok) << row.defense << ": " << row.error;
    EXPECT_GT(row.key_cells, 0);
    EXPECT_GT(row.key_bits, 0);
    EXPECT_FALSE(row.defense_tuning.empty());
    // Annotated lint: by-design constructs must not read as defects.
    EXPECT_TRUE(row.lint_ran);
    EXPECT_EQ(row.lint_errors, 0) << row.defense;
    if (row.attack == "sat") {
      EXPECT_TRUE(row.attack_ran);
    } else {
      EXPECT_FALSE(row.attack_ran);
    }
  }
  // The results CSV carries the defense axis in the legacy algorithm
  // column plus the new accounting columns.
  const std::string csv = campaign_results_csv(serial);
  EXPECT_NE(csv.find("defense_tuning"), std::string::npos);
  EXPECT_NE(csv.find("key_bits"), std::string::npos);
  EXPECT_NE(csv.find("count=4"), std::string::npos);
  EXPECT_NE(csv.find("latch"), std::string::npos);
}

TEST(CampaignTest, UnknownDefenseAttackOrTuningThrowsWithKnownKinds) {
  CampaignSpec bad_defense = small_spec(1);
  bad_defense.defenses = {{"nope", {}}};
  try {
    run_campaign(bad_defense);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("xor"), std::string::npos);  // lists the valid kinds
    EXPECT_NE(msg.find("parametric"), std::string::npos);
  }

  CampaignSpec bad_attack = small_spec(1);
  bad_attack.attacks = {"sat", "bogus"};
  try {
    run_campaign(bad_attack);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bogus"), std::string::npos);
    EXPECT_NE(msg.find("sat"), std::string::npos);
  }

  CampaignSpec bad_tuning = small_spec(1);
  bad_tuning.defenses = {{"xor", {{"zap", "1"}}}};
  EXPECT_THROW(run_campaign(bad_tuning), std::invalid_argument);
}

TEST(CampaignReportTest, CsvShapesAreConsistent) {
  const CampaignReport report = run_campaign(small_spec(2));
  const std::string results = campaign_results_csv(report);
  const std::string timing = campaign_timing_csv(report);
  // header + one line per row, newline-terminated
  const auto lines = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), '\n'));
  };
  EXPECT_EQ(lines(results), report.rows.size() + 1);
  EXPECT_EQ(lines(timing), report.rows.size() + 1);
  EXPECT_NE(results.find("benchmark"), std::string::npos);
  const std::string summary = campaign_summary_text(report);
  EXPECT_NE(summary.find("independent"), std::string::npos);
  EXPECT_NE(summary.find("parametric"), std::string::npos);
}

}  // namespace
}  // namespace stt
