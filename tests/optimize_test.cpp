#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "io/bench_io.hpp"
#include "synth/generator.hpp"
#include "synth/optimize.hpp"

namespace stt {
namespace {

TEST(Optimize, ConstantFoldsThroughGates) {
  const Netlist nl = read_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
one = CONST1()
zero = CONST0()
t1 = AND(a, one)
t2 = OR(t1, zero)
t3 = NAND(b, zero)
y = AND(t2, t3)
)");
  OptimizeStats stats;
  const Netlist out = optimize_netlist(nl, &stats);
  EXPECT_GT(stats.constants_folded, 0);
  // t3 = NAND(b, 0) = 1, so y = AND(t2, 1) = t2 = a.
  EXPECT_TRUE(comb_equivalent(nl, out));
  EXPECT_LT(out.stats().gates, nl.stats().gates);
}

TEST(Optimize, AllConstantCircuitCollapses) {
  const Netlist nl = read_bench(
      "INPUT(a)\nOUTPUT(y)\nzero = CONST0()\ny = AND(a, zero)\n");
  const Netlist out = optimize_netlist(nl);
  EXPECT_EQ(out.cell(out.find("y")).kind, CellKind::kConst0);
  EXPECT_TRUE(comb_equivalent(nl, out));
}

TEST(Optimize, SweepsBuffersAndInverterPairs) {
  const Netlist nl = read_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
b1 = BUF(a)
n1 = NOT(b1)
n2 = NOT(n1)
y = AND(n2, b)
)");
  OptimizeStats stats;
  const Netlist out = optimize_netlist(nl, &stats);
  EXPECT_GT(stats.buffers_swept + stats.inverter_pairs, 0);
  EXPECT_TRUE(comb_equivalent(nl, out));
  // y = AND(a, b) directly; the chain disappears.
  EXPECT_EQ(out.stats().gates, 1u);
}

TEST(Optimize, MergesStructuralDuplicates) {
  const Netlist nl = read_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
g1 = NAND(a, b)
g2 = NAND(a, b)
y = XOR(g1, g2)
)");
  OptimizeStats stats;
  const Netlist out = optimize_netlist(nl, &stats);
  EXPECT_GT(stats.duplicates_merged, 0);
  EXPECT_TRUE(comb_equivalent(nl, out));
  // XOR(g, g) = 0 after merging: the whole cone folds to a constant.
  EXPECT_EQ(out.cell(out.find("y")).kind, CellKind::kConst0);
}

TEST(Optimize, LutCofactoring) {
  // A LUT with a constant input cofactors to a narrower LUT (or a gate).
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId one = nl.add_const(true, "one");
  const CellId lut = nl.add_lut("l", {a, one},
                                gate_truth_mask(CellKind::kAnd, 2));
  nl.mark_output(lut);
  nl.finalize();
  const Netlist out = optimize_netlist(nl);
  // AND(a, 1) = a: a buffer that survives only because it drives the PO.
  EXPECT_TRUE(comb_equivalent(nl, out));
  const Cell& y = out.cell(out.find("l"));
  EXPECT_EQ(y.kind, CellKind::kBuf);
}

TEST(Optimize, PreservesLutConfigurations) {
  // Configured LUTs that cannot fold must survive untouched (the key!).
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId lut = nl.add_lut("secret", {a, b}, 0b0110);  // XOR
  nl.mark_output(lut);
  nl.finalize();
  const Netlist out = optimize_netlist(nl);
  const CellId id = out.find("secret");
  ASSERT_NE(id, kNullCell);
  // XOR is recognized as a standard function; either representation must
  // keep the behaviour.
  EXPECT_TRUE(comb_equivalent(nl, out));
}

TEST(Optimize, IdempotentOnCleanCircuits) {
  const Netlist nl = embedded_netlist("s27");
  OptimizeStats first;
  const Netlist once = optimize_netlist(nl, &first);
  OptimizeStats second;
  const Netlist twice = optimize_netlist(once, &second);
  EXPECT_EQ(second.cells_before, second.cells_after);
  EXPECT_EQ(second.constants_folded, 0);
  EXPECT_TRUE(comb_equivalent(once, twice));
}

// Property: optimization preserves the scan-view function on generated
// circuits (which carry natural redundancy).
class OptimizeEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeEquivalence, GeneratedCircuits) {
  const int seed = GetParam();
  CircuitProfile profile{"opt", 8, 6, 6, 150, 8};
  const Netlist nl = generate_circuit(profile, seed);
  OptimizeStats stats;
  const Netlist out = optimize_netlist(nl, &stats);
  EXPECT_LE(out.size(), nl.size());
  EXPECT_EQ(out.inputs().size(), nl.inputs().size());
  EXPECT_EQ(out.outputs().size(), nl.outputs().size());
  // Flip-flop count may only shrink (dead state), never grow or reorder.
  EXPECT_LE(out.dffs().size(), nl.dffs().size());
  if (out.dffs().size() == nl.dffs().size()) {
    EXPECT_TRUE(comb_equivalent(nl, out)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeEquivalence, ::testing::Range(1, 9));

}  // namespace
}  // namespace stt
