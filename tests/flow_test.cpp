#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/flow.hpp"
#include "io/bench_io.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(SecureFlow, EndToEndOnS641Replica) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = generate_circuit(*find_profile("s641"), 1);

  FlowOptions opt;
  opt.algorithm = SelectionAlgorithm::kParametric;
  opt.selection.seed = 2026;
  const FlowResult result = run_secure_flow(original, lib, opt);

  // The flow must not mutate its input.
  EXPECT_EQ(original.stats().luts, 0u);
  EXPECT_GT(result.hybrid.stats().luts, 0u);
  result.hybrid.check();

  // Sign-off metrics are populated and sane.
  EXPECT_EQ(result.overhead.num_stt_luts,
            static_cast<int>(result.selection.replaced.size()));
  EXPECT_LE(result.overhead.perf_degradation_pct(),
            opt.selection.timing_margin * 100.0 + 1e-6);
  EXPECT_GT(result.overhead.power_overhead_pct(), 0.0);
  EXPECT_GT(result.overhead.area_overhead_pct(), 0.0);
  EXPECT_EQ(result.security.missing_gates, result.overhead.num_stt_luts);
  EXPECT_FALSE(result.security.n_bf.is_zero());
}

TEST(SecureFlow, AllThreeAlgorithmsProduceDistinctProfiles) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = generate_circuit(*find_profile("s953"), 3);
  FlowOptions opt;
  opt.selection.seed = 5;

  opt.algorithm = SelectionAlgorithm::kIndependent;
  const auto indep = run_secure_flow(original, lib, opt);
  opt.algorithm = SelectionAlgorithm::kDependent;
  const auto dep = run_secure_flow(original, lib, opt);
  opt.algorithm = SelectionAlgorithm::kParametric;
  const auto para = run_secure_flow(original, lib, opt);

  EXPECT_EQ(indep.selection.replaced.size(), 5u);
  EXPECT_GT(dep.selection.replaced.size(), indep.selection.replaced.size());
  // Table I trend: dependent has the worst power overhead of the three.
  EXPECT_GE(dep.overhead.power_overhead_pct(),
            indep.overhead.power_overhead_pct());
}

TEST(SecureFlow, FullArtifactRoundtrip) {
  // The deployment story: export the foundry view, fabricate, then program
  // the key and obtain a chip equivalent to the original design.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile profile{"artifact", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, 4);
  FlowOptions opt;
  opt.selection.seed = 6;
  const FlowResult flow = run_secure_flow(original, lib, opt);

  BenchWriteOptions redact;
  redact.redact_luts = true;
  const std::string foundry_text = write_bench(flow.hybrid, redact);
  EXPECT_EQ(foundry_text.find("LUT_0x"), std::string::npos);

  Netlist fabricated = read_bench(foundry_text, "fab");
  EXPECT_FALSE(comb_equivalent(fabricated, original));  // unconfigured

  apply_key(fabricated, flow.selection.key);
  EXPECT_TRUE(comb_equivalent(fabricated, original));  // programmed
}

TEST(SecureFlow, VerilogHandoffContainsLutMacros) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = generate_circuit(*find_profile("s820"), 7);
  FlowOptions opt;
  opt.algorithm = SelectionAlgorithm::kIndependent;
  const FlowResult flow = run_secure_flow(original, lib, opt);
  VerilogWriteOptions vopt;
  vopt.redact_luts = true;
  const std::string v = write_verilog(flow.hybrid, vopt);
  EXPECT_NE(v.find("STT_LUT"), std::string::npos);
}

TEST(SecureFlow, SimilarityModelIsConfigurable) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = generate_circuit(*find_profile("s820"), 8);
  FlowOptions paper_opt;
  paper_opt.selection.seed = 9;
  FlowOptions computed_opt = paper_opt;
  computed_opt.similarity = SimilarityModel::computed();
  const auto a = run_secure_flow(original, lib, paper_opt);
  const auto b = run_secure_flow(original, lib, computed_opt);
  // Same selection (same seed), different estimator constants.
  EXPECT_EQ(a.selection.replaced, b.selection.replaced);
  EXPECT_FALSE(a.security.n_bf == b.security.n_bf);
}

}  // namespace
}  // namespace stt
