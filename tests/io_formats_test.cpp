#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/hybrid.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

// ----------------------------------------------------- Verilog reader ----

TEST(VerilogReader, ParsesHandwrittenModule) {
  const Netlist nl = read_verilog(R"(
    // a tiny sequential module
    module demo (clk, a, b, y);
      input clk;
      input a, b;
      output y;
      wire w;
      reg q;
      nand g0 (w, a, b);
      always @(posedge clk) q <= w;
      xor g1 (y, q, a);
    endmodule
  )");
  EXPECT_EQ(nl.name(), "demo");
  EXPECT_EQ(nl.inputs().size(), 2u);  // clk excluded
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.cell(nl.find("w")).kind, CellKind::kNand);
  EXPECT_EQ(nl.cell(nl.find("q")).kind, CellKind::kDff);
}

TEST(VerilogReader, ConstantsAndAliases) {
  const Netlist nl = read_verilog(R"(
    module c (a, y0, y1);
      input a; output y0; output y1;
      wire t;
      assign t = 1'b1;
      and g (y0, a, t);
      assign y1 = a;  // pure alias to an input
    endmodule
  )");
  EXPECT_EQ(nl.cell(nl.find("t")).kind, CellKind::kConst1);
  EXPECT_EQ(nl.outputs().size(), 2u);
  // y1 resolves to the input cell itself.
  EXPECT_EQ(nl.outputs()[1], nl.find("a"));
}

TEST(VerilogReader, ConfiguredLutIndexForm) {
  const Netlist nl = read_verilog(R"(
    module l (a, b, y);
      input a; input b; output y;
      assign y = 4'h8[{b, a}]; // AND2 as a LUT
    endmodule
  )");
  const Cell& y = nl.cell(nl.find("y"));
  EXPECT_EQ(y.kind, CellKind::kLut);
  EXPECT_EQ(y.lut_mask, 0x8ull);
  // {b, a}: a is the LSB -> fan-in 0.
  EXPECT_EQ(y.fanins[0], nl.find("a"));
}

TEST(VerilogReader, RedactedLutMacroAndBlackboxSkipped) {
  const Netlist nl = read_verilog(R"(
    module STT_LUT2 (output y, input [1:0] a);
    endmodule
    module top (a, b, y);
      input a; input b; output y;
      STT_LUT2 u0 (.y(y), .a({b, a}));
    endmodule
  )");
  EXPECT_EQ(nl.name(), "top");
  EXPECT_EQ(nl.cell(nl.find("y")).kind, CellKind::kLut);
  EXPECT_EQ(nl.cell(nl.find("y")).lut_mask, 0ull);
}

TEST(VerilogReader, ErrorsAreDiagnosed) {
  EXPECT_THROW(read_verilog("wire w;"), VerilogParseError);  // no module
  EXPECT_THROW(read_verilog("module m (a); input a; frob x (a); endmodule"),
               VerilogParseError);
  EXPECT_THROW(
      read_verilog("module m (y); output y; assign y = undefined_net; "
                   "endmodule"),
      VerilogParseError);
}

// Property: write_verilog -> read_verilog preserves the scan-view function
// for plain, hybrid and redacted+reconfigured netlists.
class VerilogRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(VerilogRoundtrip, GeneratedCircuits) {
  const int seed = GetParam();
  CircuitProfile profile{"vrt", 6, 5, 4, 60, 6};
  Netlist nl = generate_circuit(profile, seed);
  if (seed % 2 == 0) {
    int count = 0;
    for (const CellId id : nl.logic_cells()) {
      if (is_replaceable_gate(nl.cell(id).kind) && ++count % 3 == 0) {
        nl.replace_with_lut(id);
      }
    }
  }
  const Netlist back = read_verilog(write_verilog(nl), nl.name());
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.dffs().size(), nl.dffs().size());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  EXPECT_TRUE(comb_equivalent(nl, back)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VerilogRoundtrip, ::testing::Range(1, 9));

TEST(VerilogRoundtripRedacted, KeyReprogramsTheChip) {
  const Netlist original = embedded_netlist("s27");
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("G9"));
  hybrid.replace_with_lut(hybrid.find("G10"));
  const LutKey key = extract_key(hybrid);

  VerilogWriteOptions opt;
  opt.redact_luts = true;
  const Netlist fabricated = read_verilog(write_verilog(hybrid, opt), "fab");
  EXPECT_FALSE(comb_equivalent(fabricated, original));
  Netlist programmed = fabricated;
  apply_key(programmed, key);
  EXPECT_TRUE(comb_equivalent(programmed, original));
}

// -------------------------------------------------------------- BLIF ----

TEST(Blif, ParsesHandwrittenModel) {
  const Netlist nl = read_blif(R"(
# comment
.model tiny
.inputs a b
.outputs y
.latch d q re clk 0
.names a b w
11 1
.names w q d
1- 1
-1 1
.names d y
0 1
.end
)");
  EXPECT_EQ(nl.name(), "tiny");
  EXPECT_EQ(nl.cell(nl.find("w")).kind, CellKind::kAnd);
  EXPECT_EQ(nl.cell(nl.find("d")).kind, CellKind::kOr);   // 1-/-1 cover
  EXPECT_EQ(nl.cell(nl.find("y")).kind, CellKind::kNot);  // 0 1 cover
  EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Blif, OffsetCoverAndConstants) {
  const Netlist nl = read_blif(R"(
.model k
.inputs a b
.outputs n z o
.names a b n
11 0
.names z
.names o
1
.end
)");
  EXPECT_EQ(nl.cell(nl.find("n")).kind, CellKind::kNand);  // offset of AND
  EXPECT_EQ(nl.cell(nl.find("z")).kind, CellKind::kConst0);
  EXPECT_EQ(nl.cell(nl.find("o")).kind, CellKind::kConst1);
}

TEST(Blif, NonStandardCoverBecomesLut) {
  const Netlist nl = read_blif(R"(
.model l
.inputs a b
.outputs y
.names a b y
10 1
.end
)");
  const Cell& y = nl.cell(nl.find("y"));
  EXPECT_EQ(y.kind, CellKind::kLut);  // a & !b: not a standard gate
  EXPECT_EQ(y.lut_mask, 0b0010ull);
}

TEST(Blif, ContinuationLines) {
  const Netlist nl = read_blif(".model c\n.inputs a \\\n b\n.outputs y\n"
                               ".names a b y\n11 1\n.end\n");
  EXPECT_EQ(nl.inputs().size(), 2u);
}

TEST(Blif, Errors) {
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n"),
               BlifParseError);
  EXPECT_THROW(read_blif(".model m\n.inputs a\n.outputs ghost\n.end\n"),
               BlifParseError);
  EXPECT_THROW(read_blif(".model m\n.latch onlyone\n.end\n"), BlifParseError);
  EXPECT_THROW(
      read_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n"),
      BlifParseError);  // mixed cover
}

TEST(Blif, DiagnosticsCarryLineNumbers) {
  // .model with no name is an error, not a silent skip.
  try {
    read_blif(".model\n.end\n");
    FAIL() << "expected BlifParseError";
  } catch (const BlifParseError& e) {
    EXPECT_EQ(e.line, 1);
    EXPECT_NE(e.message.find(".model"), std::string::npos);
  }
  // Redefining a net reports the second definition site.
  try {
    read_blif(
        ".model m\n.inputs a\n.outputs y\n"
        ".names a y\n1 1\n.names a y\n0 1\n.end\n");
    FAIL() << "expected BlifParseError";
  } catch (const BlifParseError& e) {
    EXPECT_EQ(e.line, 6);
    EXPECT_NE(e.message.find("'y' defined twice"), std::string::npos);
  }
  // A latch whose D net never resolves reports the .latch line.
  try {
    read_blif(".model m\n.inputs a\n.outputs q\n.latch ghost q\n.end\n");
    FAIL() << "expected BlifParseError";
  } catch (const BlifParseError& e) {
    EXPECT_EQ(e.line, 4);
    EXPECT_NE(e.message.find("ghost"), std::string::npos);
  }
  // An undefined .outputs net reports its declaration line.
  try {
    read_blif(".model m\n.inputs a\n.outputs ghost\n.end\n");
    FAIL() << "expected BlifParseError";
  } catch (const BlifParseError& e) {
    EXPECT_EQ(e.line, 3);
  }
}

class BlifRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BlifRoundtrip, GeneratedCircuits) {
  const int seed = GetParam();
  CircuitProfile profile{"brt", 6, 5, 4, 60, 6};
  const Netlist nl = generate_circuit(profile, seed);
  const Netlist back = read_blif(write_blif(nl), nl.name());
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.dffs().size(), nl.dffs().size());
  EXPECT_EQ(back.stats().gates, nl.stats().gates);
  EXPECT_TRUE(comb_equivalent(nl, back)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundtrip, ::testing::Range(1, 9));

TEST(Blif, S27RoundtripPreservesCellKinds) {
  const Netlist nl = embedded_netlist("s27");
  const Netlist back = read_blif(write_blif(nl), "s27");
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    const CellId bid = back.find(c.name);
    ASSERT_NE(bid, kNullCell) << c.name;
    EXPECT_EQ(back.cell(bid).kind, c.kind) << c.name;
  }
}

TEST(Blif, FileIo) {
  const Netlist nl = embedded_netlist("count2");
  const std::string path = ::testing::TempDir() + "/count2.blif";
  write_blif_file(nl, path);
  const Netlist back = read_blif_file(path);
  EXPECT_EQ(back.name(), "count2");
  EXPECT_TRUE(comb_equivalent(nl, back));
  EXPECT_THROW(read_blif_file("/nonexistent.blif"), std::runtime_error);
}

}  // namespace
}  // namespace stt
