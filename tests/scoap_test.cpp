#include <gtest/gtest.h>

#include "core/selection.hpp"
#include "sim/scoap.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(Scoap, PrimaryInputsCostOne) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kNot, "g", {a});
  nl.mark_output(g);
  nl.finalize();
  const auto r = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(r.cc0[a], 1.0);
  EXPECT_DOUBLE_EQ(r.cc1[a], 1.0);
  // NOT: CC0(g) = CC1(a)+1 = 2; CC1(g) = CC0(a)+1 = 2.
  EXPECT_DOUBLE_EQ(r.cc0[g], 2.0);
  EXPECT_DOUBLE_EQ(r.cc1[g], 2.0);
  EXPECT_DOUBLE_EQ(r.co[g], 0.0);   // drives a PO
  EXPECT_DOUBLE_EQ(r.co[a], 1.0);   // through the inverter
}

TEST(Scoap, AndGateTextbookValues) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  const auto r = compute_scoap(nl);
  // CC1(AND) = CC1(a)+CC1(b)+1 = 3; CC0(AND) = min(CC0(a),CC0(b))+1 = 2.
  EXPECT_DOUBLE_EQ(r.cc1[g], 3.0);
  EXPECT_DOUBLE_EQ(r.cc0[g], 2.0);
  // CO(a) = CO(g) + CC1(b) + 1 = 2.
  EXPECT_DOUBLE_EQ(r.co[a], 2.0);
}

TEST(Scoap, ConstantsAreOneSided) {
  Netlist nl;
  const CellId zero = nl.add_const(false, "zero");
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kOr, "g", {zero, a});
  nl.mark_output(g);
  nl.finalize();
  const auto r = compute_scoap(nl);
  EXPECT_DOUBLE_EQ(r.cc0[zero], 0.0);
  EXPECT_GT(r.cc1[zero], 1e12);  // cannot set a tied-low net to 1
}

TEST(Scoap, FlipFlopAddsSequentialIncrement) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId ff = nl.add_dff("ff", a);
  const CellId g = nl.add_gate(CellKind::kNot, "g", {ff});
  nl.mark_output(g);
  nl.finalize();
  ScoapOptions opt;
  opt.sequential_increment = 7.0;
  const auto r = compute_scoap(nl, opt);
  EXPECT_DOUBLE_EQ(r.cc0[ff], 1.0 + 7.0);
  EXPECT_DOUBLE_EQ(r.co[a], 0.0 + 1.0 + 7.0);  // through ff then inverter
}

TEST(Scoap, SequentialLoopConverges) {
  const Netlist nl = embedded_netlist("s27");
  const auto r = compute_scoap(nl);
  for (const CellId id : nl.topo_order()) {
    EXPECT_GE(r.cc0[id], 0.0);
    EXPECT_GE(r.cc1[id], 0.0);
    // Every cell in s27 is controllable both ways and observable.
    EXPECT_LT(r.cc0[id], 1e6) << nl.cell(id).name;
    EXPECT_LT(r.cc1[id], 1e6) << nl.cell(id).name;
    EXPECT_LT(r.co[id], 1e6) << nl.cell(id).name;
  }
}

TEST(Scoap, DeterministicAndIdempotent) {
  const Netlist nl = generate_circuit({"sc", 8, 6, 6, 120, 8}, 3);
  const auto r1 = compute_scoap(nl);
  const auto r2 = compute_scoap(nl);
  EXPECT_EQ(r1.cc0, r2.cc0);
  EXPECT_EQ(r1.cc1, r2.cc1);
  EXPECT_EQ(r1.co, r2.co);
}

TEST(Scoap, AttackerViewPenalizesLutNeighbourhood) {
  // Lock a middle gate; in the attacker view the cells behind it become
  // expensive to control and the cells before it expensive to observe.
  Netlist nl("chain");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 = nl.add_gate(CellKind::kAnd, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {g1, b});
  const CellId g3 = nl.add_gate(CellKind::kXor, "g3", {g2, a});
  nl.mark_output(g3);
  nl.finalize();
  Netlist hybrid = nl;
  hybrid.replace_with_lut(g2);

  ScoapOptions attacker;
  attacker.attacker_view = true;
  const auto before = compute_scoap(nl, attacker);
  const auto after = compute_scoap(hybrid, attacker);
  EXPECT_GT(after.cc1[g2], before.cc1[g2]);  // output uncontrollable
  EXPECT_GT(after.co[g1], before.co[g1]);    // upstream unobservable
  // Designer view is unaffected by LUT-ness (configured function known).
  const auto designer = compute_scoap(hybrid);
  EXPECT_DOUBLE_EQ(designer.cc1[g2], compute_scoap(nl).cc1[g2]);
}

TEST(Scoap, ResolvabilityRanksLockedRegionsHarder) {
  const CircuitProfile profile{"res", 10, 8, 8, 200, 9};
  const Netlist original = generate_circuit(profile, 5);
  Netlist hybrid = original;
  GateSelector selector(TechLibrary::cmos90_stt());
  SelectionOptions sopt;
  sopt.seed = 5;
  const auto sel = selector.run(hybrid, SelectionAlgorithm::kDependent, sopt);
  ASSERT_GT(sel.replaced.size(), 1u);

  ScoapOptions attacker;
  attacker.attacker_view = true;
  const auto r = compute_scoap(hybrid, attacker);
  // At least one missing gate must be (near-)unresolvable for the testing
  // adversary: dependent LUTs gate each other's justification/propagation.
  double worst = 0;
  for (const CellId id : sel.replaced) {
    worst = std::max(worst, r.resolvability(hybrid, id));
  }
  EXPECT_GT(worst, attacker.unknown_lut_cost / 2);
}

}  // namespace
}  // namespace stt
