#include <gtest/gtest.h>

#include <cmath>

#include "core/overhead.hpp"
#include "power/power.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

Netlist two_gate() {
  Netlist nl("two");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kNand, "g", {a, b});
  const CellId h = nl.add_gate(CellKind::kNor, "h", {g, b});
  nl.mark_output(h);
  nl.finalize();
  return nl;
}

TEST(Power, HandComputedRollup) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = two_gate();
  const double alpha = 0.2;
  const double f = 2.0;  // GHz
  const auto p = estimate_power_uniform(nl, lib, alpha, f);
  const auto nand = lib.gate(CellKind::kNand, 2);
  const auto nor = lib.gate(CellKind::kNor, 2);
  EXPECT_NEAR(p.dynamic_uw,
              alpha * f * (nand.e_active_fj + nor.e_active_fj), 1e-9);
  EXPECT_NEAR(p.leakage_uw, (nand.leak_nw + nor.leak_nw) * 1e-3, 1e-12);
  EXPECT_NEAR(p.total_uw(), p.dynamic_uw + p.leakage_uw, 1e-12);
}

TEST(Power, LutPowerIsContentIndependent) {
  // The MTJ read energy does not depend on the configured function: a LUT
  // programmed as NAND draws exactly what the same LUT programmed as XOR
  // draws (the paper's side-channel argument).
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist as_nand = two_gate();
  as_nand.replace_with_lut(as_nand.find("g"),
                           gate_truth_mask(CellKind::kNand, 2));
  Netlist as_xor = two_gate();
  as_xor.replace_with_lut(as_xor.find("g"),
                          gate_truth_mask(CellKind::kXor, 2));
  const auto pa = estimate_power_uniform(as_nand, lib, 0.10, 1.0);
  const auto pb = estimate_power_uniform(as_xor, lib, 0.10, 1.0);
  EXPECT_DOUBLE_EQ(pa.dynamic_uw, pb.dynamic_uw);
  EXPECT_DOUBLE_EQ(pa.leakage_uw, pb.leakage_uw);
}

TEST(Power, LutPowerIsEventDriven) {
  // Sign-off model: one precharge per input transition, so LUT dynamic
  // power scales with the fan-in activity (see power.hpp; Fig. 1's
  // continuously-clocked characterization lives in tech/device_model).
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist nl = two_gate();
  nl.replace_with_lut(nl.find("g"));
  const auto p_low = estimate_power_uniform(nl, lib, 0.05, 1.0);
  const auto p_high = estimate_power_uniform(nl, lib, 0.50, 1.0);
  const auto nor = lib.gate(CellKind::kNor, 2);
  const auto lut = lib.lut(2);
  EXPECT_NEAR(p_high.dynamic_uw - p_low.dynamic_uw,
              (0.50 - 0.05) * (nor.e_active_fj + lut.e_cycle_fj), 1e-9);
}

TEST(Power, HybridConsumesMoreAtNominalActivity) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = two_gate();
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("g"));
  const auto p0 = estimate_power_uniform(original, lib, 0.10, 1.0);
  const auto p1 = estimate_power_uniform(hybrid, lib, 0.10, 1.0);
  EXPECT_GT(p1.total_uw(), p0.total_uw());
}

TEST(Power, AlphaSizeMismatchThrows) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = two_gate();
  std::vector<double> bad(nl.size() - 1, 0.1);
  EXPECT_THROW(estimate_power(nl, lib, bad, 1.0), std::invalid_argument);
}

TEST(Power, DffClockTermPresent) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId ff = nl.add_dff("ff", a);
  nl.mark_output(ff);
  nl.finalize();
  // Even at alpha = 0, a flip-flop draws clock power.
  const auto p = estimate_power_uniform(nl, lib, 0.0, 1.0);
  EXPECT_GT(p.dynamic_uw, 0.0);
}

TEST(Area, SumsCellFootprints) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = two_gate();
  EXPECT_NEAR(total_area_um2(nl, lib),
              lib.gate(CellKind::kNand, 2).area_um2 +
                  lib.gate(CellKind::kNor, 2).area_um2,
              1e-9);
}

TEST(Area, LutReplacementGrowsArea) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = two_gate();
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("g"));
  EXPECT_GT(total_area_um2(hybrid, lib), total_area_um2(original, lib));
}

TEST(Overhead, PercentagesAgainstHandValues) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = two_gate();
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("g"));
  const auto report = compare_overhead(original, hybrid, lib, 0.10);
  EXPECT_EQ(report.num_stt_luts, 1);
  EXPECT_GT(report.perf_degradation_pct(), 0.0);
  EXPECT_GT(report.power_overhead_pct(), 0.0);
  EXPECT_GT(report.area_overhead_pct(), 0.0);
  // Cross-check one percentage by hand.
  EXPECT_NEAR(report.area_overhead_pct(),
              (report.hybrid_area_um2 - report.original_area_um2) /
                  report.original_area_um2 * 100.0,
              1e-9);
}

TEST(Overhead, IdenticalNetlistsAreZero) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = two_gate();
  const auto report = compare_overhead(nl, nl, lib);
  EXPECT_DOUBLE_EQ(report.perf_degradation_pct(), 0.0);
  EXPECT_DOUBLE_EQ(report.power_overhead_pct(), 0.0);
  EXPECT_DOUBLE_EQ(report.area_overhead_pct(), 0.0);
  EXPECT_EQ(report.num_stt_luts, 0);
}

TEST(Overhead, GeneratedCircuitStaysFinite) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  CircuitProfile profile{"po", 8, 6, 5, 150, 10};
  const Netlist original = generate_circuit(profile, 3);
  Netlist hybrid = original;
  int n = 0;
  for (const CellId id : hybrid.logic_cells()) {
    if (is_replaceable_gate(hybrid.cell(id).kind) && n < 5) {
      hybrid.replace_with_lut(id);
      ++n;
    }
  }
  const auto report = compare_overhead(original, hybrid, lib);
  EXPECT_TRUE(std::isfinite(report.power_overhead_pct()));
  EXPECT_GE(report.power_overhead_pct(), 0.0);
  EXPECT_LT(report.power_overhead_pct(), 500.0);
}

}  // namespace
}  // namespace stt
