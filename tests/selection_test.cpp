#include <gtest/gtest.h>

#include <set>

#include "attack/encode.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"
#include "timing/sta.hpp"

namespace stt {
namespace {

const TechLibrary& lib() {
  static const TechLibrary kLib = TechLibrary::cmos90_stt();
  return kLib;
}

CircuitProfile medium_profile() { return {"sel", 10, 8, 10, 250, 12}; }

TEST(AlgorithmName, Mapping) {
  EXPECT_EQ(algorithm_name(SelectionAlgorithm::kIndependent), "independent");
  EXPECT_EQ(algorithm_name(SelectionAlgorithm::kDependent), "dependent");
  EXPECT_EQ(algorithm_name(SelectionAlgorithm::kParametric), "parametric");
}

TEST(Selection, RejectsAlreadyHybridNetlist) {
  Netlist nl = embedded_netlist("s27");
  nl.replace_with_lut(nl.find("G9"));
  GateSelector selector(lib());
  EXPECT_THROW(selector.run(nl, SelectionAlgorithm::kIndependent, {}),
               std::invalid_argument);
}

TEST(IndependentSelection, ReplacesExactlyFiveByDefault) {
  Netlist nl = generate_circuit(medium_profile(), 1);
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = 9;
  const auto result = selector.run(nl, SelectionAlgorithm::kIndependent, opt);
  EXPECT_EQ(result.replaced.size(), 5u);
  EXPECT_EQ(result.key.size(), 5u);
  EXPECT_EQ(nl.stats().luts, 5u);
  for (const CellId id : result.replaced) {
    EXPECT_EQ(nl.cell(id).kind, CellKind::kLut);
  }
}

TEST(IndependentSelection, CountIsConfigurable) {
  Netlist nl = generate_circuit(medium_profile(), 2);
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.indep_count = 12;
  const auto result = selector.run(nl, SelectionAlgorithm::kIndependent, opt);
  EXPECT_EQ(result.replaced.size(), 12u);
}

TEST(IndependentSelection, WorksOnTinyCircuit) {
  // s27 has only 10 gates and few eligible paths: the fallback must still
  // deliver five replacements.
  Netlist nl = embedded_netlist("s27");
  GateSelector selector(lib());
  const auto result = selector.run(nl, SelectionAlgorithm::kIndependent, {});
  EXPECT_EQ(result.replaced.size(), 5u);
}

TEST(DependentSelection, LutsFormDependentChain) {
  Netlist nl = generate_circuit(medium_profile(), 3);
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = 4;
  const auto result = selector.run(nl, SelectionAlgorithm::kDependent, opt);
  ASSERT_GE(result.replaced.size(), 2u);
  // The defining property: some missing gate is driven by another missing
  // gate (directly), since whole path segments were replaced.
  bool chained = false;
  const std::set<CellId> lut_set(result.replaced.begin(),
                                 result.replaced.end());
  for (const CellId id : result.replaced) {
    for (const CellId f : nl.cell(id).fanins) {
      if (lut_set.count(f)) chained = true;
    }
  }
  EXPECT_TRUE(chained);
}

TEST(DependentSelection, ReplacesMoreThanIndependent) {
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = 5;
  Netlist a = generate_circuit(medium_profile(), 4);
  Netlist b = generate_circuit(medium_profile(), 4);
  const auto indep = selector.run(a, SelectionAlgorithm::kIndependent, opt);
  const auto dep = selector.run(b, SelectionAlgorithm::kDependent, opt);
  EXPECT_GT(dep.replaced.size(), indep.replaced.size());
}

TEST(ParametricSelection, MeetsTimingConstraint) {
  GateSelector selector(lib());
  const Sta sta(lib());
  for (int seed = 1; seed <= 4; ++seed) {
    Netlist nl = generate_circuit(medium_profile(), seed);
    const double t0 = sta.analyze(nl).critical_delay_ps;
    SelectionOptions opt;
    opt.seed = seed;
    opt.timing_margin = 0.05;
    const auto result = selector.run(nl, SelectionAlgorithm::kParametric, opt);
    const double t1 = sta.analyze(nl).critical_delay_ps;
    EXPECT_LE(t1, t0 * 1.05 + 1e-6) << "seed " << seed;
    EXPECT_FALSE(result.replaced.empty()) << "seed " << seed;
  }
}

TEST(ParametricSelection, OnPathSelectionRespectsMinFanin) {
  Netlist nl = generate_circuit(medium_profile(), 6);
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = 6;
  opt.usl_closure = false;  // isolate the on-path L1 selection
  const auto result = selector.run(nl, SelectionAlgorithm::kParametric, opt);
  for (const CellId id : result.replaced) {
    EXPECT_GE(nl.cell(id).fanin_count(), opt.para_min_fanin);
  }
}

TEST(ParametricSelection, UslClosureAddsNeighbours) {
  // Whether the closure fires depends on how many path gates stay
  // unselected, so check across seeds: closure-off never reports USL
  // replacements, and at least one seed must exercise the closure.
  GateSelector selector(lib());
  bool closure_seen = false;
  for (int seed = 1; seed <= 8; ++seed) {
    SelectionOptions with;
    with.seed = seed;
    with.usl_closure = true;
    SelectionOptions without = with;
    without.usl_closure = false;

    Netlist a = generate_circuit(medium_profile(), seed);
    Netlist b = generate_circuit(medium_profile(), seed);
    const auto r_with = selector.run(a, SelectionAlgorithm::kParametric, with);
    const auto r_without =
        selector.run(b, SelectionAlgorithm::kParametric, without);
    EXPECT_EQ(r_without.usl_replacements, 0);
    if (r_with.usl_replacements > 0) {
      closure_seen = true;
      EXPECT_GT(r_with.replaced.size(), r_without.replaced.size());
    }
  }
  EXPECT_TRUE(closure_seen);
}

TEST(Selection, DeterministicPerSeed) {
  GateSelector selector(lib());
  for (const auto alg :
       {SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
        SelectionAlgorithm::kParametric}) {
    Netlist a = generate_circuit(medium_profile(), 8);
    Netlist b = generate_circuit(medium_profile(), 8);
    SelectionOptions opt;
    opt.seed = 99;
    const auto ra = selector.run(a, alg, opt);
    const auto rb = selector.run(b, alg, opt);
    EXPECT_EQ(ra.replaced, rb.replaced) << algorithm_name(alg);
    EXPECT_TRUE(a.structurally_equal(b)) << algorithm_name(alg);
  }
}

TEST(Selection, KeyMatchesNetlistMasks) {
  Netlist nl = generate_circuit(medium_profile(), 9);
  GateSelector selector(lib());
  const auto result = selector.run(nl, SelectionAlgorithm::kParametric, {});
  EXPECT_EQ(result.key, extract_key(nl));
}

// Property: every algorithm preserves functionality — the hybrid netlist is
// SAT-provably equivalent to the original on the scan view.
class SelectionPreservesFunction
    : public ::testing::TestWithParam<std::tuple<SelectionAlgorithm, int>> {};

TEST_P(SelectionPreservesFunction, SatEquivalence) {
  const auto [alg, seed] = GetParam();
  CircuitProfile profile{"eq", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, seed);
  Netlist hybrid = original;
  GateSelector selector(lib());
  SelectionOptions opt;
  opt.seed = seed * 7 + 1;
  const auto result = selector.run(hybrid, alg, opt);
  ASSERT_FALSE(result.replaced.empty());
  hybrid.check();
  EXPECT_TRUE(comb_equivalent(original, hybrid))
      << algorithm_name(alg) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsAndSeeds, SelectionPreservesFunction,
    ::testing::Combine(::testing::Values(SelectionAlgorithm::kIndependent,
                                         SelectionAlgorithm::kDependent,
                                         SelectionAlgorithm::kParametric),
                       ::testing::Range(1, 6)));

TEST(Selection, TracksSelectionTime) {
  Netlist nl = generate_circuit(medium_profile(), 10);
  GateSelector selector(lib());
  const auto result = selector.run(nl, SelectionAlgorithm::kDependent, {});
  EXPECT_GE(result.selection_seconds, 0.0);
  EXPECT_LT(result.selection_seconds, 60.0);
  EXPECT_GT(result.paths_considered, 0);
}

}  // namespace
}  // namespace stt
