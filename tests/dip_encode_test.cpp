// Tests for the cone-pruned constant-folded I/O-pair encoder
// (attack/dip_encode.*): unit key-row resolution, constant masking,
// known-row shrinkage, and consistency with the planted key.
#include <gtest/gtest.h>

#include <stdexcept>

#include "attack/dip_encode.hpp"
#include "attack/encode.hpp"
#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

struct Encoded {
  sat::Solver solver;
  EncodedCircuit circuit;
};

void encode_single(Encoded& e, const Netlist& nl) {
  EncodeOptions opt;
  opt.symbolic_keys = true;
  e.circuit = encode_comb(e.solver, nl, opt);
}

TEST(DipEncode, DirectLutOutputResolvesToUnit) {
  Netlist nl("direct");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId lut = nl.add_lut("l", {a, b}, 0b0110);  // XOR, mask unused
  nl.mark_output(lut);
  nl.finalize();

  Encoded e;
  encode_single(e, nl);
  DipEncoder enc(e.solver, nl,
                 std::vector<const DipEncoder::KeyVars*>{&e.circuit.key_vars});

  // Pattern (a=0, b=1) selects row 0b10 = 2; the output *is* that key bit.
  const DipEncodeStats st =
      enc.add_io_pair({false, true}, {true}, /*units_only=*/true);
  EXPECT_EQ(st.key_rows_resolved, 1);
  EXPECT_EQ(st.complex_outputs, 0);
  EXPECT_EQ(st.vars_added, 0);
  EXPECT_EQ(enc.resolved_row_bits(), 1);
  ASSERT_EQ(enc.known_rows().count(lut), 1u);
  EXPECT_TRUE(enc.known_rows().at(lut).known_mask & 0b100);

  ASSERT_EQ(e.solver.solve(), sat::Result::kSat);
  EXPECT_TRUE(e.solver.value(e.circuit.key_vars.at("l")[2]));

  // The same pattern again resolves nothing new...
  const DipEncodeStats again =
      enc.add_io_pair({false, true}, {true}, /*units_only=*/true);
  EXPECT_EQ(again.key_rows_resolved, 0);
  EXPECT_EQ(again.clauses_added, 0);
  // ...and a contradicting response is the oracle calling the netlist wrong.
  EXPECT_THROW(enc.add_io_pair({false, true}, {false}, true),
               std::logic_error);
}

TEST(DipEncode, ConstantMaskedConeAddsNothing) {
  // out = AND(lut(a,b), a): with a=0 the LUT is unobservable and the whole
  // pattern folds to a constant — zero clauses, zero variables.
  Netlist nl("masked");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId lut = nl.add_lut("l", {a, b}, 0b1111);
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {lut, a});
  nl.mark_output(g);
  nl.finalize();

  Encoded e;
  encode_single(e, nl);
  DipEncoder enc(e.solver, nl,
                 std::vector<const DipEncoder::KeyVars*>{&e.circuit.key_vars});

  const DipEncodeStats st = enc.add_io_pair({false, true}, {false});
  EXPECT_EQ(st.clauses_added, 0);
  EXPECT_EQ(st.vars_added, 0);
  EXPECT_EQ(st.key_rows_resolved, 0);
  EXPECT_EQ(st.complex_outputs, 0);
  EXPECT_EQ(enc.resolved_row_bits(), 0);
  // A response claiming the masked output is 1 contradicts the fold.
  EXPECT_THROW(enc.add_io_pair({false, true}, {true}), std::logic_error);
}

TEST(DipEncode, KnownRowsShrinkLaterCones) {
  // out0 = lut1(a,b), out1 = XOR(lut1, lut2): once a pattern resolves
  // lut1's row via out0, the same pattern's out1 collapses from a complex
  // cone to a single lut2 key literal.
  Netlist nl("shrink");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId lut1 = nl.add_lut("l1", {a, b}, 0b0110);
  const CellId lut2 = nl.add_lut("l2", {a, b}, 0b1000);
  const CellId x = nl.add_gate(CellKind::kXor, "x", {lut1, lut2});
  nl.mark_output(lut1);
  nl.mark_output(x);
  nl.finalize();

  Encoded e;
  encode_single(e, nl);
  DipEncoder enc(e.solver, nl,
                 std::vector<const DipEncoder::KeyVars*>{&e.circuit.key_vars});

  // First pass: out0 pins lut1 row 3; out1 is still complex (two unknowns
  // at fold time) and units_only skips its clauses.
  const DipEncodeStats first =
      enc.add_io_pair({true, true}, {true, false}, /*units_only=*/true);
  EXPECT_EQ(first.key_rows_resolved, 1);
  EXPECT_EQ(first.complex_outputs, 1);
  EXPECT_EQ(first.clauses_added, 1);  // just the unit pinning lut1 row 3
  EXPECT_EQ(first.cells_encoded, 0);  // units_only: no cone emission

  // Second pass, same pattern: lut1 now folds to its known constant, so
  // out1 = XOR(1, lut2) is a plain key literal — resolved, nothing complex.
  const DipEncodeStats second =
      enc.add_io_pair({true, true}, {true, false}, /*units_only=*/true);
  EXPECT_EQ(second.key_rows_resolved, 1);
  EXPECT_EQ(second.complex_outputs, 0);
  EXPECT_EQ(enc.resolved_row_bits(), 2);

  // out1 = XOR(lut1_row3, lut2_row3) = 0 with lut1_row3 = 1 forces
  // lut2_row3 = 1.
  ASSERT_EQ(e.solver.solve(), sat::Result::kSat);
  EXPECT_TRUE(e.solver.value(e.circuit.key_vars.at("l2")[3]));
}

TEST(DipEncode, RejectsAritiesAndBadKeyMaps) {
  Netlist nl("arity");
  const CellId a = nl.add_input("a");
  const CellId lut = nl.add_lut("l", {a}, 0b10);
  nl.mark_output(lut);
  nl.finalize();

  Encoded e;
  encode_single(e, nl);
  DipEncoder enc(e.solver, nl,
                 std::vector<const DipEncoder::KeyVars*>{&e.circuit.key_vars});
  EXPECT_THROW(enc.add_io_pair({true, false}, {true}), std::invalid_argument);
  EXPECT_THROW(enc.add_io_pair({true}, {true, false}), std::invalid_argument);

  DipEncoder::KeyVars missing;  // no entry for "l"
  EXPECT_THROW(DipEncoder(e.solver, nl,
                          std::vector<const DipEncoder::KeyVars*>{&missing}),
               std::invalid_argument);
}

// Property: on random hybrid circuits, the constraints the encoder emits
// for oracle pairs are always satisfied by the planted key.
class DipEncodeConsistency : public ::testing::TestWithParam<int> {};

TEST_P(DipEncodeConsistency, PlantedKeySatisfiesAllPairs) {
  const CircuitProfile profile{"dip", 6, 4, 3, 50, 5};
  Netlist nl = generate_circuit(profile, GetParam());
  int count = 0;
  for (const CellId id : nl.logic_cells()) {
    if (is_replaceable_gate(nl.cell(id).kind) && ++count % 3 == 0) {
      nl.replace_with_lut(id);
    }
  }
  if (extract_key(nl).empty()) GTEST_SKIP() << "no replaceable gates";

  ScanOracle oracle(nl);
  Encoded e;
  encode_single(e, nl);
  DipEncoder enc(e.solver, nl,
                 std::vector<const DipEncoder::KeyVars*>{&e.circuit.key_vars});

  Rng rng(GetParam() * 77 + 5);
  for (int t = 0; t < 24; ++t) {
    std::vector<bool> in(oracle.num_inputs());
    for (auto&& bit : in) bit = rng.chance(0.5);
    enc.add_io_pair(in, oracle.query(in), /*units_only=*/(t % 2) == 0);
  }

  // Assume the planted key on every key variable: must be satisfiable.
  std::vector<sat::Lit> planted;
  for (const auto& [name, vars] : e.circuit.key_vars) {
    const std::uint64_t mask = nl.cell(nl.find(name)).lut_mask;
    for (std::size_t row = 0; row < vars.size(); ++row) {
      planted.push_back((mask >> row) & 1ull ? sat::pos(vars[row])
                                             : sat::neg(vars[row]));
    }
  }
  EXPECT_EQ(e.solver.solve(planted), sat::Result::kSat);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DipEncodeConsistency, ::testing::Range(1, 9));

}  // namespace
}  // namespace stt
