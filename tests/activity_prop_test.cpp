#include <gtest/gtest.h>

#include "power/activity_prop.hpp"
#include "power/power.hpp"
#include "sim/activity.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

TEST(MaskProbability, TextbookGateValues) {
  const std::vector<double> half{0.5, 0.5};
  EXPECT_NEAR(mask_output_probability(gate_truth_mask(CellKind::kAnd, 2), 2,
                                      half),
              0.25, 1e-12);
  EXPECT_NEAR(mask_output_probability(gate_truth_mask(CellKind::kOr, 2), 2,
                                      half),
              0.75, 1e-12);
  EXPECT_NEAR(mask_output_probability(gate_truth_mask(CellKind::kXor, 2), 2,
                                      half),
              0.50, 1e-12);
}

TEST(MaskProbability, BiasedInputs) {
  // P(AND) = p_a * p_b.
  EXPECT_NEAR(mask_output_probability(gate_truth_mask(CellKind::kAnd, 2), 2,
                                      {0.9, 0.2}),
              0.18, 1e-12);
  EXPECT_THROW(mask_output_probability(0b1000, 2, {0.5}),
               std::invalid_argument);
}

TEST(ActivityProp, SingleGateToggleRates) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  const auto stats = propagate_activity(nl);
  EXPECT_NEAR(stats.prob1[g], 0.25, 1e-12);
  // alpha = 2 * 0.25 * 0.75 = 0.375; inputs: 2 * 0.5 * 0.5 = 0.5.
  EXPECT_NEAR(stats.toggle[g], 0.375, 1e-12);
  EXPECT_NEAR(stats.toggle[a], 0.5, 1e-12);
}

TEST(ActivityProp, ConstantsNeverToggle) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId one = nl.add_const(true, "one");
  const CellId g = nl.add_gate(CellKind::kOr, "g", {a, one});
  nl.mark_output(g);
  nl.finalize();
  const auto stats = propagate_activity(nl);
  EXPECT_DOUBLE_EQ(stats.prob1[one], 1.0);
  EXPECT_DOUBLE_EQ(stats.toggle[one], 0.0);
  EXPECT_DOUBLE_EQ(stats.toggle[g], 0.0);  // OR(x, 1) is constant 1
}

TEST(ActivityProp, SequentialFixedPointConverges) {
  const Netlist nl = embedded_netlist("s27");
  const auto stats = propagate_activity(nl);
  for (CellId id = 0; id < nl.size(); ++id) {
    EXPECT_GE(stats.prob1[id], 0.0);
    EXPECT_LE(stats.prob1[id], 1.0);
    EXPECT_GE(stats.toggle[id], 0.0);
    EXPECT_LE(stats.toggle[id], 0.5 + 1e-12);
  }
}

TEST(ActivityProp, AgreesWithSimulationOnAverage) {
  // Spatial correlations make per-signal values diverge, but the average
  // activity over a generated circuit must land in the same regime as the
  // simulation estimator.
  const CircuitProfile profile{"ap", 10, 8, 8, 250, 9};
  const Netlist nl = generate_circuit(profile, 3);
  const auto analytic = propagate_activity(nl);
  Rng rng(3);
  ActivityOptions sopt;
  sopt.cycles = 256;
  const auto simulated = estimate_activity(nl, rng, sopt);

  double analytic_avg = 0;
  double simulated_avg = 0;
  std::size_t count = 0;
  for (const CellId id : nl.logic_cells()) {
    analytic_avg += analytic.toggle[id];
    simulated_avg += simulated.alpha[id];
    ++count;
  }
  analytic_avg /= static_cast<double>(count);
  simulated_avg /= static_cast<double>(count);
  EXPECT_GT(analytic_avg, 0.0);
  EXPECT_NEAR(analytic_avg, simulated_avg,
              std::max(simulated_avg, analytic_avg));  // same regime
}

TEST(ActivityProp, FeedsPowerModel) {
  const CircuitProfile profile{"ap2", 8, 6, 6, 120, 8};
  const Netlist nl = generate_circuit(profile, 5);
  const auto stats = propagate_activity(nl);
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const auto p = estimate_power(nl, lib, stats.toggle, 1.0);
  EXPECT_GT(p.dynamic_uw, 0.0);
  EXPECT_GT(p.leakage_uw, 0.0);
}

TEST(ActivityProp, BiasedPrimaryInputs) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kNot, "g", {a});
  nl.mark_output(g);
  nl.finalize();
  ActivityPropOptions opt;
  opt.pi_prob1 = 0.9;
  const auto stats = propagate_activity(nl, opt);
  EXPECT_NEAR(stats.prob1[g], 0.1, 1e-12);
  EXPECT_NEAR(stats.toggle[g], 2 * 0.9 * 0.1, 1e-12);
}

}  // namespace
}  // namespace stt
