#include <gtest/gtest.h>

#include "attack/sat.hpp"
#include "util/rng.hpp"

namespace stt::sat {
namespace {

TEST(SatSolver, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a) || s.value(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(pos(a));
  EXPECT_FALSE(s.add_unit(neg(a)));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause(std::span<const Lit>{}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)}));
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, DuplicateLiteralsCollapsed) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), pos(a), pos(a)}));
  EXPECT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(a));
}

TEST(SatSolver, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.new_var());
  for (int i = 0; i + 1 < 10; ++i) s.add_binary(neg(v[i]), pos(v[i + 1]));
  s.add_unit(pos(v[0]));
  ASSERT_EQ(s.solve(), Result::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.value(v[i]));
}

TEST(SatSolver, XorChainForcesParity) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  // c = a XOR b, with c=1, a=1 -> b must be 0.
  s.add_ternary(neg(c), pos(a), pos(b));
  s.add_ternary(neg(c), neg(a), neg(b));
  s.add_ternary(pos(c), neg(a), pos(b));
  s.add_ternary(pos(c), pos(a), neg(b));
  s.add_unit(pos(c));
  s.add_unit(pos(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.value(b));
}

// Pigeonhole principle: n+1 pigeons into n holes is UNSAT — a classic
// resolution-hard family exercising conflict analysis and learning.
void add_php(Solver& s, int pigeons, int holes) {
  std::vector<std::vector<Var>> p(pigeons, std::vector<Var>(holes));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> at_least;
    for (int j = 0; j < holes; ++j) at_least.push_back(pos(p[i][j]));
    s.add_clause(at_least);
  }
  for (int j = 0; j < holes; ++j) {
    for (int i1 = 0; i1 < pigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < pigeons; ++i2) {
        s.add_binary(neg(p[i1][j]), neg(p[i2][j]));
      }
    }
  }
}

TEST(SatSolver, Pigeonhole5Into4Unsat) {
  Solver s;
  add_php(s, 5, 4);
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.conflicts(), 0);
}

TEST(SatSolver, Pigeonhole4Into4Sat) {
  Solver s;
  add_php(s, 4, 4);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  Solver s;
  add_php(s, 8, 7);  // hard enough to exceed a tiny budget
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), Result::kUnknown);
  // With the budget lifted it finishes.
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, AssumptionsRestrictModels) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  const Lit assume_na[] = {neg(a)};
  ASSERT_EQ(s.solve(assume_na), Result::kSat);
  EXPECT_FALSE(s.value(a));
  EXPECT_TRUE(s.value(b));
  // Conflicting assumptions: UNSAT under assumptions, SAT without.
  s.add_unit(pos(a));
  EXPECT_EQ(s.solve(assume_na), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, IncrementalAddAfterSolve) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(pos(a), pos(b));
  ASSERT_EQ(s.solve(), Result::kSat);
  s.add_unit(neg(a));
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.value(b));
  s.add_unit(neg(b));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

// Property: on random 3-SAT instances the solver agrees with an exhaustive
// truth-table check, for both satisfiable and unsatisfiable formulas.
class RandomThreeSat : public ::testing::TestWithParam<int> {};

TEST_P(RandomThreeSat, MatchesBruteForce) {
  Rng rng(GetParam() * 1000003ull);
  const int n_vars = 10;
  // ~4.3 clauses/var sits at the phase transition: a mix of SAT and UNSAT.
  const int n_clauses = 43;

  std::vector<std::vector<Lit>> clauses;
  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < n_vars; ++i) vars.push_back(s.new_var());
  for (int c = 0; c < n_clauses; ++c) {
    std::vector<Lit> clause;
    while (clause.size() < 3) {
      const Var v = vars[rng.below(n_vars)];
      const Lit l(v, rng.chance(0.5));
      bool dup = false;
      for (const Lit e : clause) dup |= (e.var() == l.var());
      if (!dup) clause.push_back(l);
    }
    clauses.push_back(clause);
    s.add_clause(clause);
  }

  // Exhaustive reference.
  bool brute_sat = false;
  for (std::uint32_t m = 0; m < (1u << n_vars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) {
        const bool v = (m >> l.var()) & 1u;
        any |= (v != l.negated());
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  const Result r = s.solve();
  EXPECT_EQ(r == Result::kSat, brute_sat);
  if (r == Result::kSat) {
    // The returned model must actually satisfy every clause.
    for (const auto& clause : clauses) {
      bool any = false;
      for (const Lit l : clause) any |= (s.value(l.var()) != l.negated());
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomThreeSat, ::testing::Range(1, 25));

TEST(SatSolver, DeepRestartSequenceTerminates) {
  // Regression: the Luby restart computation must stay correct far past the
  // first few restarts (an early version hung at restart index 3).
  Solver s;
  add_php(s, 8, 7);  // thousands of conflicts -> many restarts
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.conflicts(), 500);
}

TEST(SatSolver, StatisticsAdvance) {
  Solver s;
  add_php(s, 5, 4);
  (void)s.solve();
  EXPECT_GT(s.propagations(), 0);
  EXPECT_GT(s.decisions(), 0);
}

}  // namespace
}  // namespace stt::sat
