#include <gtest/gtest.h>

#include "core/camouflage.hpp"
#include "core/flow.hpp"
#include "core/security.hpp"
#include "defense/registry.hpp"
#include "synth/generator.hpp"
#include "verify/lint.hpp"

namespace stt {
namespace {

int count_rule(const std::vector<LintFinding>& findings, LintRule rule) {
  int n = 0;
  for (const LintFinding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

const LintFinding* find_rule(const std::vector<LintFinding>& findings,
                             LintRule rule) {
  for (const LintFinding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// -- layer 1: seeded structural defects -------------------------------------

TEST(StructuralLint, CleanEmbeddedNetlistHasNoFindings) {
  const Netlist nl = embedded_netlist("s27");
  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.counts.total(), 0);
  EXPECT_EQ(report.verdict(), "clean");
  EXPECT_TRUE(report.audit_ran);
  EXPECT_FALSE(report.failed(/*strict=*/true));
}

TEST(StructuralLint, CombinationalCycleFiresExactlyStr001) {
  // g1 = AND(a, g2); g2 = OR(g1, b): a 2-cell combinational loop. finalize()
  // would throw here, which is exactly why the lint layer never calls it.
  Netlist nl("cycle");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 = nl.add_cell(CellKind::kAnd, "g1");
  const CellId g2 = nl.add_cell(CellKind::kOr, "g2");
  nl.connect(g1, {a, g2});
  nl.connect(g2, {g1, b});
  nl.mark_output(g2);

  const StructuralLintResult result = run_structural_lint(nl);
  EXPECT_FALSE(result.evaluable);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kCombinationalCycle);
  EXPECT_EQ(result.findings[0].severity, LintSeverity::kError);
  EXPECT_EQ(result.findings[0].cell, std::min(g1, g2));
}

TEST(StructuralLint, UnresolvedFaninFiresExactlyStr002) {
  Netlist nl("unresolved");
  const CellId g = nl.add_cell(CellKind::kNot, "g");
  nl.append_fanin(g, kNullCell);  // a parser that never resolved
  nl.mark_output(g);

  const StructuralLintResult result = run_structural_lint(nl);
  EXPECT_FALSE(result.evaluable);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kUnresolvedFanin);
}

TEST(StructuralLint, ArityMismatchFiresExactlyStr003) {
  Netlist nl("arity");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_cell(CellKind::kNot, "g");
  nl.connect(g, {a, b});  // NOT with two fan-ins
  nl.mark_output(g);

  const StructuralLintResult result = run_structural_lint(nl);
  EXPECT_FALSE(result.evaluable);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kArityMismatch);
}

TEST(StructuralLint, FanoutDesyncFiresExactlyStr004) {
  Netlist nl("desync");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  nl.cell(a).fanouts.clear();  // simulate an in-place editing bug

  const StructuralLintResult result = run_structural_lint(nl);
  EXPECT_TRUE(result.evaluable);  // fan-in side is still sound
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kFanoutDesync);
  EXPECT_EQ(result.findings[0].cell, g);
}

TEST(StructuralLint, DeadMissingGateIsErrorDeadCmosIsWarning) {
  Netlist nl("dead");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});  // never read
  const CellId h = nl.add_gate(CellKind::kOr, "h", {a, b});
  nl.mark_output(h);
  nl.finalize();

  {
    const StructuralLintResult result = run_structural_lint(nl);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].rule, LintRule::kDeadGate);
    EXPECT_EQ(result.findings[0].severity, LintSeverity::kWarning);
  }
  nl.replace_with_lut(g);  // now a dead *missing* gate: inflates M
  {
    const StructuralLintResult result = run_structural_lint(nl);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].rule, LintRule::kDeadGate);
    EXPECT_EQ(result.findings[0].severity, LintSeverity::kError);
  }
}

TEST(StructuralLint, DuplicateFaninFiresExactlyStr008) {
  Netlist nl("dup");
  const CellId a = nl.add_input("a");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, a});
  nl.mark_output(g);
  nl.finalize();

  const StructuralLintResult result = run_structural_lint(nl);
  EXPECT_TRUE(result.evaluable);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kDuplicateFanin);
}

TEST(StructuralLint, LutMaskWidthFiresExactlyStr009) {
  Netlist nl("mask");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId l = nl.add_lut("l", {a, b}, 0x6);
  nl.mark_output(l);
  nl.finalize();
  nl.cell(l).lut_mask = 0x16;  // bit 4 is beyond the 4-row truth table

  const StructuralLintResult result = run_structural_lint(nl);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, LintRule::kLutMaskWidth);
}

TEST(StructuralLint, CamouflageInvariants) {
  Netlist nl("camo");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});  // plain CMOS
  const CellId l = nl.add_lut("l", {a, b}, 0x6);  // XOR: outside camo set
  nl.mark_output(g);
  nl.mark_output(l);
  nl.finalize();

  StructuralLintOptions opt;
  opt.camouflaged = {g, l};
  const StructuralLintResult result = run_structural_lint(nl, opt);
  EXPECT_EQ(count_rule(result.findings, LintRule::kCamouflagedCmos), 1);
  EXPECT_EQ(count_rule(result.findings, LintRule::kCamouflageMask), 1);
  // A declared-camouflaged LUT configured as NAND is fine.
  nl.cell(l).lut_mask = gate_truth_mask(CellKind::kNand, 2);
  const StructuralLintResult ok = run_structural_lint(nl, opt);
  EXPECT_EQ(count_rule(ok.findings, LintRule::kCamouflageMask), 0);
}

// -- layer 2: seeded security defects ---------------------------------------

TEST(StaticAudit, ConstantFedLutFiresExactlySec001) {
  // l = LUT_0x6(a, c0): input 1 tied to constant 0 halves the reachable
  // rows; the restricted function still depends on `a` (it is BUF(a)).
  Netlist nl("constfed");
  const CellId a = nl.add_input("a");
  const CellId c0 = nl.add_const(false, "c0");
  const CellId l = nl.add_lut("l", {a, c0}, 0x6);
  nl.mark_output(l);
  nl.finalize();

  LintOptions opt;
  opt.audit.scoap = false;  // isolate SEC001 from the SEC004 proxy
  const LintReport report = run_lint(nl, opt);
  EXPECT_EQ(count_rule(report.findings, LintRule::kConstantFedLut), 1);
  EXPECT_EQ(count_rule(report.findings, LintRule::kInferableLut), 0);
  EXPECT_EQ(count_rule(report.findings, LintRule::kVacuousLutInput), 0);
  EXPECT_EQ(count_rule(report.findings, LintRule::kMaskedLut), 0);

  ASSERT_EQ(report.audit.luts.size(), 1u);
  const LutAudit& audit = report.audit.luts[0];
  EXPECT_EQ(audit.cell, l);
  EXPECT_EQ(audit.constant_inputs, 1);
  EXPECT_EQ(audit.reachable_rows, 0x3ull);  // rows with input 1 == 0
  EXPECT_EQ(audit.effective_support, 1);
  // The collapsed candidate set shrinks Eq. (2): the audit must report a
  // strictly positive security drop.
  EXPECT_GT(report.audit.log10_drop_dep, 0.0);
}

TEST(StaticAudit, InferableLutFiresExactlySec002) {
  // An all-zeros mask is the constant-0 function: statically inferable, so
  // the gate contributes nothing to M.
  Netlist nl("inferable");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId l = nl.add_lut("l", {a, b}, 0x0);
  nl.mark_output(l);
  nl.finalize();

  LintOptions opt;
  opt.audit.scoap = false;
  const LintReport report = run_lint(nl, opt);
  EXPECT_EQ(count_rule(report.findings, LintRule::kInferableLut), 1);
  EXPECT_EQ(count_rule(report.findings, LintRule::kConstantFedLut), 0);
  EXPECT_EQ(count_rule(report.findings, LintRule::kVacuousLutInput), 0);
  EXPECT_EQ(report.audit.optimistic.missing_gates, 1);
  EXPECT_EQ(report.audit.audited.missing_gates, 0);
}

TEST(StaticAudit, MaskedLutFiresExactlySec005) {
  // The missing gate's only reader ANDs it with constant 0: forcing the LUT
  // output to 0 and to 1 produces identical definite values at the PO, so
  // its secret never influences the chip.
  Netlist nl("masked");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c0 = nl.add_const(false, "c0");
  const CellId l = nl.add_lut("l", {a, b}, 0x6);
  const CellId m = nl.add_gate(CellKind::kAnd, "m", {l, c0});
  nl.mark_output(m);
  nl.finalize();

  LintOptions opt;
  opt.audit.scoap = false;
  const LintReport report = run_lint(nl, opt);
  EXPECT_EQ(count_rule(report.findings, LintRule::kMaskedLut), 1);
  EXPECT_EQ(count_rule(report.findings, LintRule::kConstantFedLut), 0);
  const LintFinding* f = find_rule(report.findings, LintRule::kMaskedLut);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->cell, l);
  EXPECT_EQ(report.audit.audited.missing_gates, 0);
}

TEST(StaticAudit, PiAdjacentLutFiresExactlySec004) {
  // A missing gate fed by PIs and driving a PO: every truth-table row is
  // justified and observed at trivial SCOAP cost, well under the threshold.
  Netlist nl("piadj");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId l = nl.add_lut("l", {a, b}, 0x8);
  nl.mark_output(l);
  nl.finalize();

  const LintReport report = run_lint(nl);  // scoap on by default
  EXPECT_EQ(count_rule(report.findings, LintRule::kResolvableLut), 1);
  const LintFinding* f = find_rule(report.findings, LintRule::kResolvableLut);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->severity, LintSeverity::kInfo);  // advisory: never gates CI
  EXPECT_EQ(count_rule(report.findings, LintRule::kConstantFedLut), 0);
  EXPECT_EQ(count_rule(report.findings, LintRule::kInferableLut), 0);
}

TEST(StaticAudit, UnevaluableNetlistSkipsAuditWithSec000) {
  Netlist nl("cycle");
  const CellId a = nl.add_input("a");
  const CellId g1 = nl.add_cell(CellKind::kAnd, "g1");
  const CellId g2 = nl.add_cell(CellKind::kOr, "g2");
  nl.connect(g1, {a, g2});
  nl.connect(g2, {g1, a});
  nl.mark_output(g2);

  const LintReport report = run_lint(nl);
  EXPECT_FALSE(report.audit_ran);
  EXPECT_EQ(count_rule(report.findings, LintRule::kAuditSkipped), 1);
  EXPECT_EQ(report.verdict(), "errors");
}

// -- exact-match acceptance: audited == optimistic when nothing collapses ---

TEST(StaticAudit, AuditedEquationsMatchSecurityReportExactly) {
  const auto profile = find_profile("s641");
  ASSERT_TRUE(profile.has_value());
  const Netlist original = generate_circuit(*profile, 1);
  const TechLibrary lib = TechLibrary::cmos90_stt();
  for (const SelectionAlgorithm alg :
       {SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
        SelectionAlgorithm::kParametric}) {
    FlowOptions opt;
    opt.algorithm = alg;
    opt.selection.seed = 7;
    const FlowResult flow = run_secure_flow(original, lib, opt);
    const LintReport report = run_lint(flow.hybrid);
    ASSERT_TRUE(report.audit_ran);
    EXPECT_EQ(report.counts.errors, 0) << algorithm_name(alg);
    EXPECT_EQ(report.counts.warnings, 0) << algorithm_name(alg);

    // The optimistic leg reproduces core/security.cpp verbatim.
    const SecurityReport direct =
        security_report(flow.hybrid, SimilarityModel::paper());
    EXPECT_EQ(report.audit.optimistic.n_indep.to_string(),
              direct.n_indep.to_string());
    EXPECT_EQ(report.audit.optimistic.n_dep.to_string(),
              direct.n_dep.to_string());
    EXPECT_EQ(report.audit.optimistic.n_bf.to_string(),
              direct.n_bf.to_string());

    // No candidate set collapses on a freshly locked netlist, so the
    // audited figures are bit-for-bit identical (same arithmetic, same
    // order), not merely close.
    EXPECT_EQ(report.audit.audited.missing_gates,
              report.audit.optimistic.missing_gates);
    EXPECT_EQ(report.audit.audited.accessible_inputs,
              report.audit.optimistic.accessible_inputs);
    EXPECT_EQ(report.audit.audited.n_indep.to_string(),
              report.audit.optimistic.n_indep.to_string());
    EXPECT_EQ(report.audit.audited.n_dep.to_string(),
              report.audit.optimistic.n_dep.to_string());
    EXPECT_EQ(report.audit.audited.n_bf.to_string(),
              report.audit.optimistic.n_bf.to_string());
    EXPECT_EQ(report.audit.log10_drop_indep, 0.0);
    EXPECT_EQ(report.audit.log10_drop_dep, 0.0);
    EXPECT_EQ(report.audit.log10_drop_bf, 0.0);
  }
}

// -- clean-ISCAS regression: zero findings on unlocked benchmarks -----------

TEST(Lint, CleanGeneratedIscasNetlistsHaveZeroFindings) {
  for (const std::string name : {"s641", "s820", "s1238"}) {
    const auto profile = find_profile(name);
    ASSERT_TRUE(profile.has_value());
    const Netlist nl = generate_circuit(*profile, 1);
    const LintReport report = run_lint(nl);
    EXPECT_EQ(report.counts.total(), 0) << name;
    EXPECT_EQ(report.verdict(), "clean") << name;
  }
}

// -- report plumbing --------------------------------------------------------

TEST(Lint, StrictPromotesWarningsButNotInfos) {
  Netlist nl("warn");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  nl.add_gate(CellKind::kAnd, "g", {a, b});  // dead CMOS gate: warning
  const CellId h = nl.add_gate(CellKind::kOr, "h", {a, b});
  nl.mark_output(h);
  nl.finalize();

  const LintReport report = run_lint(nl);
  EXPECT_EQ(report.verdict(), "warnings");
  EXPECT_FALSE(report.failed(/*strict=*/false));
  EXPECT_TRUE(report.failed(/*strict=*/true));

  // HYB001 (one-input missing gate) is info: never fails, even strict.
  Netlist nl2("info");
  const CellId x = nl2.add_input("x");
  const CellId l = nl2.add_lut("l", {x}, 0x2);
  nl2.mark_output(l);
  nl2.finalize();
  LintOptions opt;
  opt.audit.scoap = false;
  const LintReport info = run_lint(nl2, opt);
  EXPECT_EQ(info.verdict(), "info");
  EXPECT_FALSE(info.failed(/*strict=*/true));
}

TEST(Lint, JsonReportCarriesRuleIdsAndAuditBlock) {
  Netlist nl("json");
  const CellId a = nl.add_input("a");
  const CellId c0 = nl.add_const(false, "c0");
  const CellId l = nl.add_lut("l", {a, c0}, 0x6);
  nl.mark_output(l);
  nl.finalize();

  LintOptions opt;
  opt.audit.scoap = false;
  const LintReport report = run_lint(nl, opt);
  const std::string json = lint_json(report);
  EXPECT_NE(json.find("\"netlist\": \"json\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"SEC001\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(json.find("\"audit\""), std::string::npos);
  EXPECT_NE(json.find("\"log10_drop\""), std::string::npos);

  const std::string arr = lint_json(std::vector<LintReport>{report, report});
  EXPECT_EQ(arr.front(), '[');
}

// -- defense annotations (HYB004-006 + by-design suppression) ----------------

TEST(DefenseLint, LockedBenchmarkIsCleanWithAnnotationsNoisyWithout) {
  // Lock an ISCAS benchmark with every related-work defense composed, then
  // lint it twice. Without annotations the locked netlist looks defective
  // (single-input LUTs, inferable constants, vacuous mux inputs); with the
  // defense's own annotations those by-design findings vanish and the
  // netlist gates clean.
  const auto profile = find_profile("s641");
  ASSERT_TRUE(profile.has_value());
  const Netlist original = generate_circuit(*profile, 7);
  const TechLibrary lib = TechLibrary::cmos90_stt();

  defense::DefenseOptions dopt;
  dopt.seed = 11;
  const defense::DefenseResult xorlock = defense::registry().apply(
      "xor", original, lib, dopt, {{"count", "6"}});
  const defense::DefenseResult latched = defense::registry().apply(
      "latch", xorlock.locked, lib, dopt, {{"count", "4"}});
  const defense::DefenseResult constant = defense::registry().apply(
      "const", latched.locked, lib, dopt, {{"inject", "4"}});
  DefenseAnnotations all = xorlock.annotations;
  all.merge(latched.annotations);
  all.merge(constant.annotations);
  ASSERT_EQ(all.size(), 6u + 4u + 4u);

  const LintReport noisy = run_lint(constant.locked);
  EXPECT_GT(count_rule(noisy.findings, LintRule::kSingleInputLut), 0);
  EXPECT_GT(count_rule(noisy.findings, LintRule::kInferableLut), 0);
  EXPECT_GT(count_rule(noisy.findings, LintRule::kVacuousLutInput), 0);
  EXPECT_TRUE(noisy.failed(/*strict=*/false));

  LintOptions opt;
  opt.defense = all;
  const LintReport annotated = run_lint(constant.locked, opt);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kSingleInputLut), 0);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kInferableLut), 0);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kVacuousLutInput), 0);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kKeyGate), 0);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kDecoyLatch), 0);
  EXPECT_EQ(count_rule(annotated.findings, LintRule::kLockedConstant), 0);
  EXPECT_FALSE(annotated.failed(/*strict=*/false));

  // The suppression is diagnostics-only: the audited security arithmetic
  // must be identical with and without annotations.
  ASSERT_TRUE(noisy.audit_ran);
  ASSERT_TRUE(annotated.audit_ran);
  EXPECT_EQ(annotated.audit.audited.missing_gates,
            noisy.audit.audited.missing_gates);
  EXPECT_EQ(annotated.audit.audited.n_bf.to_string(),
            noisy.audit.audited.n_bf.to_string());
  EXPECT_EQ(annotated.audit.audited.n_indep.to_string(),
            noisy.audit.audited.n_indep.to_string());
}

TEST(DefenseLint, StaleOrMalformedAnnotationsFireHyb004To006) {
  Netlist nl("annot");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();

  LintOptions opt;
  opt.run_audit = false;
  opt.defense.key_gates.insert("ghost");   // no such cell
  opt.defense.key_gates.insert("g");       // exists but is a plain AND
  opt.defense.decoy_latches.insert("g");   // not a mux either
  opt.defense.locked_constants.insert("g");
  const LintReport report = run_lint(nl, opt);
  EXPECT_EQ(count_rule(report.findings, LintRule::kKeyGate), 2);
  EXPECT_EQ(count_rule(report.findings, LintRule::kDecoyLatch), 1);
  EXPECT_EQ(count_rule(report.findings, LintRule::kLockedConstant), 1);
  EXPECT_TRUE(report.failed(/*strict=*/false));
}

TEST(DefenseLint, MisconfiguredConstructsAreFlagged) {
  // A declared key gate with a 2-row mask that is neither BUF nor NOT, and
  // a declared decoy latch configured to the *latched* polarity.
  Netlist nl("misconf");
  const CellId a = nl.add_input("a");
  const CellId kg = nl.add_lut("kg0", {a}, 0b11);  // const1, not a key bit
  const CellId q = nl.add_dff("dl0_q", a);
  const CellId mux = nl.add_lut("dl0", {a, q}, 0xC);  // latched, not clear
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {kg, mux});
  nl.mark_output(g);
  nl.finalize();

  LintOptions opt;
  opt.run_audit = false;
  opt.defense.key_gates.insert("kg0");
  opt.defense.decoy_latches.insert("dl0");
  const LintReport report = run_lint(nl, opt);
  const LintFinding* kgf = find_rule(report.findings, LintRule::kKeyGate);
  ASSERT_NE(kgf, nullptr);
  EXPECT_EQ(kgf->cell_name, "kg0");
  const LintFinding* dlf = find_rule(report.findings, LintRule::kDecoyLatch);
  ASSERT_NE(dlf, nullptr);
  EXPECT_EQ(dlf->cell_name, "dl0");
}

TEST(DefenseLint, AnnotationsSerializationRoundTrips) {
  DefenseAnnotations a;
  a.key_gates = {"kg1", "kg0"};
  a.decoy_latches = {"dl0"};
  a.locked_constants = {"lc0", "G17"};
  const std::string text = annotations_to_string(a);
  const DefenseAnnotations back = annotations_from_string(text);
  EXPECT_EQ(back.key_gates, a.key_gates);
  EXPECT_EQ(back.decoy_latches, a.decoy_latches);
  EXPECT_EQ(back.locked_constants, a.locked_constants);
  // Deterministic (sorted) emission.
  EXPECT_EQ(annotations_to_string(back), text);
  EXPECT_THROW(annotations_from_string("widget kg0\n"), std::runtime_error);
  EXPECT_THROW(annotations_from_string("keygate\n"), std::runtime_error);
  EXPECT_EQ(annotations_from_string("# comment\n\n").size(), 0u);
}

}  // namespace
}  // namespace stt
