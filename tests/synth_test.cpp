#include <gtest/gtest.h>

#include <set>

#include "graph/analysis.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(Profiles, TwelvePaperBenchmarks) {
  const auto& profiles = iscas89_profiles();
  ASSERT_EQ(profiles.size(), 12u);
  EXPECT_EQ(profiles.front().name, "s641");
  EXPECT_EQ(profiles.front().n_gates, 287);
  EXPECT_EQ(profiles.back().name, "s38584");
  EXPECT_EQ(profiles.back().n_gates, 19253);
  // The paper's Table I average size is 4033.
  double total = 0;
  for (const auto& p : profiles) total += p.n_gates;
  EXPECT_NEAR(total / 12.0, 4033.0, 1.0);
}

TEST(Profiles, Lookup) {
  ASSERT_TRUE(find_profile("s1238").has_value());
  EXPECT_EQ(find_profile("s1238")->n_gates, 529);
  EXPECT_FALSE(find_profile("s9999").has_value());
}

TEST(Generator, DegenerateProfileThrows) {
  EXPECT_THROW(generate_circuit({"bad", 0, 1, 0, 10, 5}, 1),
               std::invalid_argument);
  EXPECT_THROW(generate_circuit({"bad", 4, 1, 0, 2, 5}, 1),
               std::invalid_argument);
}

TEST(Generator, Deterministic) {
  const CircuitProfile p{"det", 8, 6, 5, 100, 8};
  const Netlist a = generate_circuit(p, 42);
  const Netlist b = generate_circuit(p, 42);
  EXPECT_TRUE(a.structurally_equal(b));
  const Netlist c = generate_circuit(p, 43);
  EXPECT_FALSE(a.structurally_equal(c));
}

class GeneratorMatchesProfile : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorMatchesProfile, SmallPaperProfiles) {
  // Check the first 7 (small) paper profiles exactly.
  const auto& profile = iscas89_profiles()[GetParam()];
  const Netlist nl = generate_circuit(profile, 1);
  const auto s = nl.stats();
  EXPECT_EQ(s.inputs, static_cast<std::size_t>(profile.n_pi));
  EXPECT_EQ(s.dffs, static_cast<std::size_t>(profile.n_ff));
  EXPECT_EQ(s.gates, static_cast<std::size_t>(profile.n_gates));
  // The liveness pass may add a few POs beyond the profile.
  EXPECT_GE(s.outputs, static_cast<std::size_t>(profile.n_po));
  EXPECT_LE(s.outputs, static_cast<std::size_t>(profile.n_po) +
                           static_cast<std::size_t>(profile.n_gates) / 20 + 4);
  nl.check();
}

INSTANTIATE_TEST_SUITE_P(Paper, GeneratorMatchesProfile,
                         ::testing::Range(0, 7));

TEST(Generator, EveryCellIsLive) {
  const CircuitProfile p{"live", 10, 8, 6, 200, 10};
  const Netlist nl = generate_circuit(p, 3);
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    EXPECT_TRUE(!c.fanouts.empty() || c.is_output)
        << "dead cell " << c.name << " (" << kind_name(c.kind) << ")";
  }
}

TEST(Generator, SequentialDepthAchievable) {
  // The generator must produce multi-flip-flop PI->PO structure, otherwise
  // the paper's >= 2-FF path requirement can never be met.
  const CircuitProfile p{"depth", 10, 8, 12, 300, 10};
  const Netlist nl = generate_circuit(p, 8);
  EXPECT_GE(circuit_seq_depth(nl), 2);
}

TEST(Generator, GateMixIsIscasLike) {
  const CircuitProfile p{"mix", 10, 8, 10, 1000, 15};
  const Netlist nl = generate_circuit(p, 5);
  std::size_t inverters = 0;
  std::size_t nand_nor = 0;
  std::size_t total = 0;
  for (const CellId id : nl.logic_cells()) {
    const CellKind k = nl.cell(id).kind;
    ++total;
    if (k == CellKind::kNot || k == CellKind::kBuf) ++inverters;
    if (k == CellKind::kNand || k == CellKind::kNor) ++nand_nor;
  }
  EXPECT_GT(inverters, total / 10);
  EXPECT_LT(inverters, total / 2);
  EXPECT_GT(nand_nor, total / 5);
}

TEST(Generator, FaninsAreDistinct) {
  const CircuitProfile p{"fan", 8, 6, 5, 150, 8};
  const Netlist nl = generate_circuit(p, 6);
  for (CellId id = 0; id < nl.size(); ++id) {
    const auto& f = nl.cell(id).fanins;
    const std::set<CellId> uniq(f.begin(), f.end());
    EXPECT_EQ(uniq.size(), f.size()) << nl.cell(id).name;
  }
}

TEST(Generator, LargeProfileScales) {
  const Netlist nl = generate_circuit(*find_profile("s5378a"), 2);
  EXPECT_EQ(nl.stats().gates, 2779u);
  EXPECT_EQ(nl.stats().dffs, 179u);
  nl.check();
}

TEST(Embedded, NamesAndLoad) {
  const auto names = embedded_names();
  ASSERT_GE(names.size(), 2u);
  for (const auto& name : names) {
    const Netlist nl = embedded_netlist(name);
    EXPECT_EQ(nl.name(), name);
    nl.check();
  }
  EXPECT_THROW(embedded_netlist("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace stt
