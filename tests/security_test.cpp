#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "core/security.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

TEST(SecurityReport, PureCmosNetlistIsZero) {
  const Netlist nl = embedded_netlist("s27");
  const auto report = security_report(nl, SimilarityModel::paper());
  EXPECT_EQ(report.missing_gates, 0);
  EXPECT_TRUE(report.n_indep.is_zero());
  EXPECT_TRUE(report.n_dep.is_zero());
  EXPECT_TRUE(report.n_bf.is_zero());
}

TEST(SecurityReport, HandComputedSingleLut) {
  // PI -> g(AND) -> PO, combinational: one 2-input LUT, D_i = 1.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  nl.mark_output(g);
  nl.finalize();
  nl.replace_with_lut(g);

  const auto model = SimilarityModel::paper();
  const auto report = security_report(nl, model);
  EXPECT_EQ(report.missing_gates, 1);
  EXPECT_EQ(report.accessible_inputs, 2);  // a and b
  EXPECT_EQ(report.circuit_depth, 1);
  // Eq. 1: alpha * D = 2.45 * 1; Eq. 2: alpha * P * D = 2.45 * 2.5;
  // Eq. 3: 2^2 * 2.5 * 1 = 10.
  EXPECT_NEAR(report.n_indep.to_double(), 2.45, 1e-9);
  EXPECT_NEAR(report.n_dep.to_double(), 2.45 * 2.5, 1e-9);
  EXPECT_NEAR(report.n_bf.to_double(), 4.0 * 2.5, 1e-9);
}

TEST(SecurityReport, DepthMultipliesThroughFlipFlops) {
  // LUT output must cross one flip-flop to reach the PO: D_i = 2.
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  const CellId ff = nl.add_dff("ff", g);
  const CellId o = nl.add_gate(CellKind::kOr, "o", {ff, a});
  nl.mark_output(o);
  nl.finalize();
  nl.replace_with_lut(g);

  const auto report = security_report(nl, SimilarityModel::paper());
  EXPECT_NEAR(report.n_indep.to_double(), 2.45 * 2.0, 1e-9);
}

TEST(SecurityReport, TwoLutsMultiplyInEq2) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g1 = nl.add_gate(CellKind::kAnd, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {g1, c});
  nl.mark_output(g2);
  nl.finalize();
  nl.replace_with_lut(g1);
  nl.replace_with_lut(g2);

  const auto report = security_report(nl, SimilarityModel::paper());
  EXPECT_EQ(report.missing_gates, 2);
  // Accessible inputs: the controllable support {a, b, c} (the walk crosses
  // LUT g1 down to its own support).
  EXPECT_EQ(report.accessible_inputs, 3);
  // Eq. 1 adds, Eq. 2 multiplies.
  EXPECT_NEAR(report.n_indep.to_double(), 2.45 + 2.45, 1e-9);
  EXPECT_NEAR(report.n_dep.to_double(), (2.45 * 2.5) * (2.45 * 2.5), 1e-6);
  // Eq. 3: 2^3 * 2.5^2 * 1.
  EXPECT_NEAR(report.n_bf.to_double(), 8.0 * 6.25, 1e-6);
}

TEST(SecurityReport, MeanFieldsAreAverages) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g1 = nl.add_gate(CellKind::kAnd, "g1", {a, b});       // 2-in
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {g1, c, a});    // 3-in
  nl.mark_output(g2);
  nl.finalize();
  nl.replace_with_lut(g1);
  nl.replace_with_lut(g2);
  const auto report = security_report(nl, SimilarityModel::paper());
  EXPECT_NEAR(report.mean_alpha, (2.45 + 4.2) / 2.0, 1e-9);
  EXPECT_NEAR(report.mean_candidates, (2.5 + 12.0) / 2.0, 1e-9);
}

TEST(RequiredClocks, AlgorithmMapping) {
  SecurityReport report;
  report.n_indep = BigNum::from_double(10);
  report.n_dep = BigNum::from_double(100);
  report.n_bf = BigNum::from_double(1000);
  EXPECT_EQ(required_clocks(report, SelectionAlgorithm::kIndependent),
            report.n_indep);
  EXPECT_EQ(required_clocks(report, SelectionAlgorithm::kDependent),
            report.n_dep);
  EXPECT_EQ(required_clocks(report, SelectionAlgorithm::kParametric),
            report.n_bf);
}

TEST(AttackYears, BillionPatternsPerSecond) {
  // 1000 years at 1e9/s ~= 3.156e19 clocks.
  const BigNum clocks = BigNum::from_mantissa_exp(3.156, 19);
  const BigNum years = attack_years(clocks);
  EXPECT_NEAR(years.log10(), 3.0, 0.01);
  EXPECT_TRUE(attack_years(BigNum()).is_zero());
}

TEST(SecurityOrdering, ParametricBeatsDependentBeatsIndependent) {
  // The paper's Fig. 3 ordering, evaluated on the same circuit through the
  // full flow.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile profile{"ord", 16, 12, 24, 900, 14};
  const Netlist original = generate_circuit(profile, 5);

  FlowOptions fo;
  fo.selection.seed = 17;
  // A designer demanding parametric security would target enough timing
  // paths for the exponential terms to dominate; pin the count so the test
  // does not depend on the size-based default.
  fo.selection.para_num_paths = 8;
  fo.algorithm = SelectionAlgorithm::kIndependent;
  const auto indep = run_secure_flow(original, lib, fo);
  fo.algorithm = SelectionAlgorithm::kDependent;
  const auto dep = run_secure_flow(original, lib, fo);
  fo.algorithm = SelectionAlgorithm::kParametric;
  const auto para = run_secure_flow(original, lib, fo);

  const BigNum n1 = required_clocks(indep.security, SelectionAlgorithm::kIndependent);
  const BigNum n2 = required_clocks(dep.security, SelectionAlgorithm::kDependent);
  const BigNum n3 = required_clocks(para.security, SelectionAlgorithm::kParametric);
  // Independent selection (additive Eq. 1) is always the weakest by orders
  // of magnitude. Between Eq. 2 and Eq. 3 the winner depends on the gate
  // counts each run produced (visible in the paper's own Table I, where
  // dependent sometimes inserts 3x more LUTs than parametric); both must
  // dwarf the additive bound.
  EXPECT_TRUE(n1 < n2);
  EXPECT_TRUE(n1 < n3);
  EXPECT_GT(n2.log10(), n1.log10() + 3.0);
  EXPECT_GT(n3.log10(), n1.log10() + 3.0);
}

TEST(SecurityReport, UnobservableLutUsesCircuitDepth) {
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g = nl.add_gate(CellKind::kAnd, "g", {a, b});
  const CellId dead = nl.add_gate(CellKind::kOr, "dead", {g, a});
  (void)dead;  // no PO reachable from dead
  nl.mark_output(g);
  nl.finalize();
  nl.replace_with_lut(dead);
  const auto report = security_report(nl, SimilarityModel::paper());
  // Depth 1 circuit: D_i falls back to 1; value stays finite and positive.
  EXPECT_NEAR(report.n_indep.to_double(), 2.45, 1e-9);
}

}  // namespace
}  // namespace stt
