#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/hybrid.hpp"
#include "io/bench_io.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Property: pinning the encoded inputs to a concrete pattern and solving
// yields exactly the simulator's outputs.
class EncodingMatchesSimulation : public ::testing::TestWithParam<int> {};

TEST_P(EncodingMatchesSimulation, RandomCircuitsAndPatterns) {
  CircuitProfile profile{"enc", 5, 4, 3, 45, 5};
  Netlist nl = generate_circuit(profile, GetParam());
  // Mix in some configured LUTs so the constant-LUT encoding is covered.
  int count = 0;
  for (const CellId id : nl.logic_cells()) {
    if (is_replaceable_gate(nl.cell(id).kind) && ++count % 4 == 0) {
      nl.replace_with_lut(id);
    }
  }

  const Simulator sim(nl);
  Rng rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    sat::Solver solver;
    const EncodedCircuit enc = encode_comb(solver, nl);
    std::vector<bool> in(enc.input_vars.size());
    for (auto&& b : in) b = rng.chance(0.5);
    for (std::size_t i = 0; i < in.size(); ++i) {
      solver.add_unit(in[i] ? sat::pos(enc.input_vars[i])
                            : sat::neg(enc.input_vars[i]));
    }
    ASSERT_EQ(solver.solve(), sat::Result::kSat);

    const std::size_t n_pi = nl.inputs().size();
    std::vector<bool> pi(in.begin(), in.begin() + n_pi);
    std::vector<bool> ff(in.begin() + n_pi, in.end());
    const auto po = sim.eval_single(pi, ff);
    for (std::size_t o = 0; o < po.size(); ++o) {
      EXPECT_EQ(solver.value(enc.output_vars[o]), po[o]) << "output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingMatchesSimulation,
                         ::testing::Range(1, 11));

TEST(Encode, SharedInputSizeMismatchThrows) {
  const Netlist nl = embedded_netlist("s27");
  sat::Solver solver;
  std::vector<sat::Var> wrong(3);
  for (auto& v : wrong) v = solver.new_var();
  EncodeOptions opt;
  opt.share_inputs = &wrong;
  EXPECT_THROW(encode_comb(solver, nl, opt), std::invalid_argument);
}

TEST(Encode, SymbolicKeysCreateRowVariables) {
  Netlist nl = read_bench(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b)\nz = OR(y, c)\n");
  nl.replace_with_lut(nl.find("y"));
  sat::Solver solver;
  EncodeOptions opt;
  opt.symbolic_keys = true;
  const EncodedCircuit enc = encode_comb(solver, nl, opt);
  ASSERT_EQ(enc.key_vars.size(), 1u);
  EXPECT_EQ(enc.key_vars.at("y").size(), 4u);
}

TEST(Encode, SymbolicKeyConstrainedToTruthBehavesLikeGate) {
  Netlist locked = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  locked.replace_with_lut(locked.find("y"));
  const Netlist plain = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");

  sat::Solver solver;
  EncodeOptions sym;
  sym.symbolic_keys = true;
  const EncodedCircuit el = encode_comb(solver, locked, sym);
  EncodeOptions share;
  share.share_inputs = &el.input_vars;
  const EncodedCircuit ep = encode_comb(solver, plain, share);
  const sat::Var m = add_miter(solver, el, ep);

  // Pin the key to AND2's truth table: the miter must become UNSAT.
  const std::uint64_t truth = gate_truth_mask(CellKind::kAnd, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    solver.add_unit(((truth >> r) & 1ull) ? sat::pos(el.key_vars.at("y")[r])
                                          : sat::neg(el.key_vars.at("y")[r]));
  }
  const sat::Lit assume[] = {sat::pos(m)};
  EXPECT_EQ(solver.solve(assume), sat::Result::kUnsat);
}

TEST(Encode, WrongKeyMakesMiterSat) {
  Netlist locked = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  locked.replace_with_lut(locked.find("y"));
  const Netlist plain = read_bench(
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n");
  sat::Solver solver;
  EncodeOptions sym;
  sym.symbolic_keys = true;
  const EncodedCircuit el = encode_comb(solver, locked, sym);
  EncodeOptions share;
  share.share_inputs = &el.input_vars;
  const EncodedCircuit ep = encode_comb(solver, plain, share);
  const sat::Var m = add_miter(solver, el, ep);
  const std::uint64_t wrong = gate_truth_mask(CellKind::kNand, 2);
  for (std::size_t r = 0; r < 4; ++r) {
    solver.add_unit(((wrong >> r) & 1ull) ? sat::pos(el.key_vars.at("y")[r])
                                          : sat::neg(el.key_vars.at("y")[r]));
  }
  const sat::Lit assume[] = {sat::pos(m)};
  EXPECT_EQ(solver.solve(assume), sat::Result::kSat);
}

TEST(CombEquivalence, IdenticalNetlists) {
  const Netlist nl = embedded_netlist("s27");
  bool proven = false;
  EXPECT_TRUE(comb_equivalent(nl, nl, -1, &proven));
  EXPECT_TRUE(proven);
}

TEST(CombEquivalence, LutReplacementIsEquivalent) {
  const Netlist original = embedded_netlist("s27");
  Netlist hybrid = original;
  hybrid.replace_with_lut(hybrid.find("G9"));
  hybrid.replace_with_lut(hybrid.find("G12"));
  EXPECT_TRUE(comb_equivalent(original, hybrid));
}

TEST(CombEquivalence, DetectsFunctionalChange) {
  const Netlist original = embedded_netlist("s27");
  Netlist tampered = original;
  // Reconfigure one LUT wrongly.
  tampered.replace_with_lut(tampered.find("G9"),
                            gate_truth_mask(CellKind::kNor, 2));
  EXPECT_FALSE(comb_equivalent(original, tampered));
}

TEST(CombEquivalence, InterfaceMismatchIsInequivalent) {
  const Netlist a = embedded_netlist("s27");
  const Netlist b = embedded_netlist("count2");
  EXPECT_FALSE(comb_equivalent(a, b));
}

TEST(CombEquivalence, DeMorganPair) {
  const Netlist a = read_bench(
      "INPUT(x)\nINPUT(y)\nOUTPUT(o)\no = NAND(x, y)\n");
  const Netlist b = read_bench(
      "INPUT(x)\nINPUT(y)\nOUTPUT(o)\nnx = NOT(x)\nny = NOT(y)\no = OR(nx, ny)\n");
  EXPECT_TRUE(comb_equivalent(a, b));
}

TEST(HybridKeys, ExtractApplyRoundtrip) {
  Netlist nl = embedded_netlist("s27");
  nl.replace_with_lut(nl.find("G9"));
  nl.replace_with_lut(nl.find("G15"));
  const LutKey key = extract_key(nl);
  ASSERT_EQ(key.size(), 2u);

  Netlist stripped = foundry_view(nl);
  EXPECT_EQ(stripped.cell(stripped.find("G9")).lut_mask, 0ull);
  EXPECT_FALSE(comb_equivalent(nl, stripped));

  apply_key(stripped, key);
  EXPECT_TRUE(comb_equivalent(nl, stripped));
}

TEST(HybridKeys, SerializationRoundtrip) {
  LutKey key{{"G9", 0x7}, {"G15", 0xE}};
  const LutKey back = key_from_string(key_to_string(key));
  EXPECT_EQ(back, key);
}

TEST(HybridKeys, ApplyValidates) {
  Netlist nl = embedded_netlist("s27");
  nl.replace_with_lut(nl.find("G9"));
  EXPECT_THROW(apply_key(nl, LutKey{{"ghost", 1}}), std::invalid_argument);
  EXPECT_THROW(apply_key(nl, LutKey{{"G15", 1}}), std::invalid_argument);
}

TEST(HybridKeys, KeyBits) {
  Netlist nl = embedded_netlist("s27");
  EXPECT_EQ(key_bits(nl), 0u);
  nl.replace_with_lut(nl.find("G9"));   // 2-input: 4 bits
  nl.replace_with_lut(nl.find("G14"));  // 1-input: 2 bits
  EXPECT_EQ(key_bits(nl), 6u);
}

}  // namespace
}  // namespace stt
