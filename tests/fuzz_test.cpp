// Randomized stress tests ("fuzzing" within the deterministic Rng): long
// random sequences of structural edits, flow stages and format round trips
// must never violate netlist invariants or functional equivalence.
#include <gtest/gtest.h>

#include "attack/encode.hpp"
#include "core/packing.hpp"
#include "core/selection.hpp"
#include "io/bench_io.hpp"
#include "io/blif_io.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"
#include "synth/optimize.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Random structural edits that must preserve all invariants.
class EditFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EditFuzz, RandomEditSequencesKeepInvariants) {
  const int seed = GetParam();
  Rng rng(seed * 7919);
  CircuitProfile profile{"fz", 8, 6, 6, 120, 8};
  Netlist nl = generate_circuit(profile, seed);

  for (int step = 0; step < 60; ++step) {
    const auto logic = nl.logic_cells();
    const CellId victim = rng.pick(logic);
    Cell& c = nl.cell(victim);
    switch (rng.below(3)) {
      case 0:  // replace a gate with a LUT
        if (is_replaceable_gate(c.kind) &&
            c.fanin_count() <= kMaxLutInputs) {
          nl.replace_with_lut(victim);
        }
        break;
      case 1: {  // rewire one fan-in to another upstream-safe driver
        if (c.fanin_count() == 0) break;
        const int slot = static_cast<int>(rng.below(c.fanin_count()));
        // Safe new driver: any primary input (never creates a cycle).
        const CellId driver = rng.pick(std::vector<CellId>(
            nl.inputs().begin(), nl.inputs().end()));
        nl.replace_fanin(victim, slot, driver);
        break;
      }
      case 2:  // reconfigure a LUT arbitrarily
        if (c.kind == CellKind::kLut) {
          nl.replace_with_lut(victim, rng() & full_mask(c.fanin_count()));
        }
        break;
    }
  }
  EXPECT_NO_THROW(nl.check());
  // Whatever came out must still round-trip through all three formats.
  const Netlist b = read_bench(write_bench(nl), "f");
  EXPECT_NO_THROW(b.check());
  const Netlist v = read_verilog(write_verilog(nl), "f");
  EXPECT_NO_THROW(v.check());
  EXPECT_TRUE(comb_equivalent(b, v));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EditFuzz, ::testing::Range(1, 9));

// Random flow-stage chains: select -> pack -> optimize -> strip, in random
// order and multiplicity, always ends functionally equivalent.
class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, RandomStageChains) {
  const int seed = GetParam();
  Rng rng(seed * 104729);
  CircuitProfile profile{"pf", 8, 6, 6, 150, 8};
  const Netlist original = generate_circuit(profile, seed);
  Netlist work = original;
  const TechLibrary lib = TechLibrary::cmos90_stt();

  bool selected = false;
  for (int stage = 0; stage < 5; ++stage) {
    switch (rng.below(3)) {
      case 0:
        // Selection requires a pure-CMOS netlist (the optimizer may have
        // produced LUT cells from cofactored functions).
        if (!selected && work.stats().luts == 0) {
          GateSelector selector(lib);
          SelectionOptions opt;
          opt.seed = rng();
          const auto alg = static_cast<SelectionAlgorithm>(rng.below(3));
          (void)selector.run(work, alg, opt);
          selected = true;
        }
        break;
      case 1: {
        PackingOptions opt;
        opt.seed = rng();
        (void)pack_complex_functions(work, opt);
        work = strip_dead_logic(work);
        break;
      }
      case 2:
        work = optimize_netlist(work);
        break;
    }
  }
  EXPECT_NO_THROW(work.check());
  // Optimization may legally remove dead *state*; equivalence only claimed
  // when the scan interface survived intact.
  if (work.dffs().size() == original.dffs().size()) {
    EXPECT_TRUE(comb_equivalent(original, work)) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(1, 13));

// BLIF is the third leg: chain all three formats and end where we started.
class FormatChainFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FormatChainFuzz, BenchVerilogBlifChain) {
  const int seed = GetParam();
  CircuitProfile profile{"fc", 6, 5, 4, 70, 6};
  const Netlist original = generate_circuit(profile, seed);
  const Netlist a = read_bench(write_bench(original), "x");
  const Netlist b = read_verilog(write_verilog(a), "x");
  const Netlist c = read_blif(write_blif(b), "x");
  EXPECT_TRUE(comb_equivalent(original, c)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatChainFuzz, ::testing::Range(1, 9));

}  // namespace
}  // namespace stt
