// Result-store robustness and resumable-campaign determinism:
//
//  * wire codec round-trips and fails loudly on truncation;
//  * ResultStore create/open semantics — clobber refusal, spec-fingerprint
//    enforcement, wrong-magic rejection;
//  * crash recovery — torn frame headers, torn payloads, and corrupt
//    (checksum-mismatching) tails are truncated away on open, keeping every
//    whole record;
//  * the API-level byte-identity contract: an interrupted-then-resumed
//    campaign and a shard-merged campaign both reproduce the uninterrupted
//    single-process run's CSV and stable JSON exactly.
//
// The process-kill variant of crash recovery (STTLOCK_STORE_CRASH_AFTER
// actually _exit(137)-ing a campaign) runs in CI's "resumable" job; here
// interruption is modeled by recording only a shard's subset of the grid,
// which exercises the same resume path without forking.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/report.hpp"
#include "runtime/shard.hpp"
#include "runtime/store.hpp"
#include "runtime/wire.hpp"

namespace stt {
namespace {

std::filesystem::path temp_store(const std::string& name) {
  const auto path = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove(path);
  return path;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void append_bytes(const std::filesystem::path& path, const std::string& b) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << b;
}

/// A fast two-benchmark grid with a "none" and an oracle-free attack axis
/// point, small enough for tier-1 but wide enough that sharding is
/// non-trivial (16 rows).
CampaignSpec small_spec() {
  CampaignSpec spec;
  spec.benchmarks = {"s641", "s1238"};
  spec.algorithms = {SelectionAlgorithm::kIndependent,
                     SelectionAlgorithm::kParametric};
  spec.attacks = {"static", "none"};
  spec.trials = 2;
  spec.jobs = 2;
  return spec;
}

std::string spec_fingerprint(std::uint64_t master_seed) {
  CampaignGrid grid;
  grid.master_seed = master_seed;
  grid.trials = 1;
  grid.benchmarks = {"s641"};
  grid.defenses = {{"independent", {}}};
  grid.attacks = {"none"};
  return campaign_grid_bytes(grid);
}

TEST(Wire, RoundTripsEveryTypeAndDetectsTruncation) {
  WireWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.b(true);
  w.f64(-0.125);
  w.str("hello world");
  const std::string bytes = w.bytes();

  WireReader r(bytes);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_TRUE(r.b());
  EXPECT_EQ(r.f64(), -0.125);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_TRUE(r.done());

  WireReader truncated(std::string_view(bytes).substr(0, bytes.size() - 1));
  truncated.u8();
  truncated.u32();
  truncated.u64();
  truncated.i32();
  truncated.i64();
  truncated.b();
  truncated.f64();
  EXPECT_THROW(truncated.str(), std::runtime_error);
}

TEST(Wire, TrialRecordCodecIsCanonical) {
  TrialRecord rec;
  rec.benchmark = "s641";
  rec.defense = "xor";
  rec.defense_tuning = "count=16";
  rec.attack = "sat";
  rec.trial = 1;
  rec.ok = true;
  rec.num_luts = 7;
  rec.key_bits = 31;
  rec.attack_ran = true;
  rec.attack_success = true;
  rec.attack_queries = 12345;
  rec.lint_ran = true;
  rec.lint_verdict = "clean";
  rec.audit_log10_drop = 2.5;

  WireWriter w1;
  encode_trial_record(w1, rec);
  const std::string bytes = w1.bytes();

  WireReader r(bytes);
  const TrialRecord back = decode_trial_record(r);
  EXPECT_TRUE(r.done());

  WireWriter w2;
  encode_trial_record(w2, back);
  EXPECT_EQ(bytes, w2.bytes());  // canonical: value equality = byte equality
  EXPECT_EQ(back.benchmark, "s641");
  EXPECT_EQ(back.defense_tuning, "count=16");
  EXPECT_EQ(back.attack_queries, 12345u);
  EXPECT_EQ(back.audit_log10_drop, 2.5);
}

TEST(Store, CreateRefusesToClobberAndOpenChecksSpec) {
  const auto path = temp_store("clobber.store");
  const std::string spec = spec_fingerprint(1);
  {
    auto store = ResultStore::create(path.string(), spec);
    ASSERT_NE(store, nullptr);
    EXPECT_TRUE(store->open_stats().note.empty());
  }
  // A second create must refuse (the file holds results).
  EXPECT_THROW(ResultStore::create(path.string(), spec), std::runtime_error);
  // Resuming with the identical fingerprint succeeds...
  EXPECT_NO_THROW(ResultStore::open(path.string(), spec));
  // ...but a different campaign's fingerprint is rejected.
  EXPECT_THROW(ResultStore::open(path.string(), spec_fingerprint(2)),
               std::runtime_error);
  // Resume-from-missing-file creates it (kill/resume loops are idempotent).
  const auto fresh = temp_store("fresh-via-open.store");
  EXPECT_NO_THROW(ResultStore::open(fresh.string(), spec));
  EXPECT_TRUE(std::filesystem::exists(fresh));
}

TEST(Store, RejectsForeignFiles) {
  const auto path = temp_store("not-a-store.bin");
  append_bytes(path, "definitely not a result store\n");
  EXPECT_THROW(ResultStore::open_existing(path.string()), std::runtime_error);
  EXPECT_THROW(ResultStore::open(path.string(), spec_fingerprint(1)),
               std::runtime_error);
}

TEST(Store, AppendsDedupAndReloadExactly) {
  const auto path = temp_store("roundtrip.store");
  const std::string spec = spec_fingerprint(1);
  const TrialKey key{"s641", "independent", "", "none", 0};
  TrialRecord rec;
  rec.benchmark = "s641";
  rec.defense = "independent";
  rec.attack = "none";
  rec.ok = true;
  obs::MetricsSnapshot delta;
  delta.counters["flow.runs"] = 3;
  {
    auto store = ResultStore::create(path.string(), spec);
    EXPECT_TRUE(store->append_trial(key, rec, delta));
    EXPECT_FALSE(store->append_trial(key, rec, delta));  // dedup is a no-op
    EXPECT_TRUE(store->append_stage("gen/s641/t0", delta));
    EXPECT_FALSE(store->append_stage("gen/s641/t0", delta));
  }
  auto store = ResultStore::open_existing(path.string());
  EXPECT_TRUE(store->open_stats().note.empty());
  ASSERT_EQ(store->trials().size(), 1u);
  ASSERT_EQ(store->stages().size(), 1u);
  EXPECT_TRUE(store->contains_trial(key));
  EXPECT_EQ(store->trials().at(key).record.benchmark, "s641");
  EXPECT_EQ(store->trials().at(key).obs_delta.counters.at("flow.runs"), 3u);
  EXPECT_EQ(store->stages().at("gen/s641/t0").counters.at("flow.runs"), 3u);
}

TEST(Store, TornTailIsTruncatedKeepingWholeRecords) {
  const auto path = temp_store("torn.store");
  const std::string spec = spec_fingerprint(1);
  const TrialKey key{"s641", "independent", "", "none", 0};
  {
    auto store = ResultStore::create(path.string(), spec);
    store->append_trial(key, TrialRecord{}, {});
  }
  const std::string whole = read_file(path);

  // A torn frame header (the crash-injection shape: type + half a length).
  append_bytes(path, std::string("\x01\x40\x00", 3));
  {
    auto store = ResultStore::open(path.string(), spec);
    EXPECT_EQ(store->trials().size(), 1u);
    EXPECT_NE(store->open_stats().note.find("torn"), std::string::npos);
    EXPECT_EQ(store->open_stats().dropped_bytes, 3u);
  }
  EXPECT_EQ(read_file(path), whole);  // tail gone, records intact

  // A whole header promising a payload that never made it to disk.
  {
    WireWriter w;
    w.u8(1);
    w.u32(100);  // length 100, but only 4 payload bytes follow
    w.u32(0);
    append_bytes(path, w.bytes() + "abcd");
  }
  {
    auto store = ResultStore::open(path.string(), spec);
    EXPECT_EQ(store->trials().size(), 1u);
    EXPECT_FALSE(store->open_stats().note.empty());
  }
  EXPECT_EQ(read_file(path), whole);

  // A complete frame whose checksum does not match its payload.
  {
    WireWriter w;
    w.u8(1);
    w.u32(4);
    w.u32(0xdeadbeefu);  // not crc32("junk")
    append_bytes(path, w.bytes() + "junk");
  }
  {
    auto store = ResultStore::open(path.string(), spec);
    EXPECT_EQ(store->trials().size(), 1u);
    EXPECT_NE(store->open_stats().note.find("checksum"), std::string::npos);
  }
  EXPECT_EQ(read_file(path), whole);
  // After recovery the file opens clean.
  auto store = ResultStore::open(path.string(), spec);
  EXPECT_TRUE(store->open_stats().note.empty());
}

TEST(CampaignStore, InterruptedThenResumedRunIsByteIdentical) {
  const CampaignSpec base = small_spec();
  const CampaignReport ref = run_campaign(base);
  const std::string ref_csv = campaign_results_csv(ref);
  const std::string ref_json = campaign_json(ref, /*include_profile=*/false);

  // "Interrupt": record only shard 1/2 of the grid, as a killed process
  // would have left an arbitrary recorded subset behind.
  const auto path = temp_store("resume.store");
  CampaignSpec partial = base;
  partial.store_path = path.string();
  partial.shard_index = 1;
  partial.shard_count = 2;
  run_campaign(partial);

  // Resume the full grid from the store at a different thread count.
  CampaignSpec resumed = base;
  resumed.store_path = path.string();
  resumed.resume = true;
  resumed.jobs = 4;
  const CampaignReport rep = run_campaign(resumed);
  EXPECT_EQ(rep.profile.rows_resumed, 8u);
  EXPECT_EQ(rep.profile.rows_executed, 8u);
  EXPECT_EQ(campaign_results_csv(rep), ref_csv);
  EXPECT_EQ(campaign_json(rep, false), ref_json);

  // Resuming again is a pure replay: nothing executes, bytes still match.
  const CampaignReport replay = run_campaign(resumed);
  EXPECT_EQ(replay.profile.rows_resumed, 16u);
  EXPECT_EQ(replay.profile.rows_executed, 0u);
  EXPECT_EQ(campaign_results_csv(replay), ref_csv);
  EXPECT_EQ(campaign_json(replay, false), ref_json);
}

TEST(CampaignStore, ShardUnionMergesToTheUnshardedRun) {
  const CampaignSpec base = small_spec();
  const CampaignReport ref = run_campaign(base);

  const auto p1 = temp_store("shard1.store");
  const auto p2 = temp_store("shard2.store");
  CampaignSpec s1 = base;
  s1.store_path = p1.string();
  s1.shard_index = 1;
  s1.shard_count = 2;
  s1.jobs = 1;
  CampaignSpec s2 = base;
  s2.store_path = p2.string();
  s2.shard_index = 2;
  s2.shard_count = 2;
  s2.jobs = 3;
  const CampaignReport r1 = run_campaign(s1);
  const CampaignReport r2 = run_campaign(s2);
  EXPECT_EQ(r1.rows.size() + r2.rows.size(), ref.rows.size());

  // Shards are disjoint and merging only one of them reports the gap.
  EXPECT_THROW(merge_stores({p1.string()}), std::runtime_error);

  MergeStats stats;
  const CampaignReport merged =
      merge_stores({p1.string(), p2.string()}, &stats);
  EXPECT_EQ(stats.stores, 2u);
  EXPECT_EQ(stats.trials, ref.rows.size());
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(campaign_results_csv(merged), campaign_results_csv(ref));
  EXPECT_EQ(campaign_json(merged, false), campaign_json(ref, false));
}

TEST(CampaignStore, MergeRejectsConflictingAndForeignStores) {
  const std::string spec = spec_fingerprint(1);
  const TrialKey key{"s641", "independent", "", "none", 0};

  const auto pa = temp_store("conflict-a.store");
  const auto pb = temp_store("conflict-b.store");
  TrialRecord rec;
  rec.benchmark = "s641";
  rec.defense = "independent";
  rec.attack = "none";
  rec.ok = true;
  ResultStore::create(pa.string(), spec)->append_trial(key, rec, {});
  rec.num_luts = 99;  // same key, different payload: not shards of one run
  ResultStore::create(pb.string(), spec)->append_trial(key, rec, {});
  EXPECT_THROW(merge_stores({pa.string(), pb.string()}), std::runtime_error);

  // Different spec fingerprints can never merge.
  const auto pc = temp_store("foreign.store");
  ResultStore::create(pc.string(), spec_fingerprint(2));
  EXPECT_THROW(merge_stores({pa.string(), pc.string()}), std::runtime_error);

  EXPECT_THROW(merge_stores({}), std::runtime_error);
}

TEST(CampaignStore, DedupCacheCountsGroupReuse) {
  // Two attack rows per (benchmark, defense, trial) group share one cached
  // attacker view, so every group shows exactly one reuse.
  CampaignSpec spec = small_spec();
  spec.benchmarks = {"s641"};
  spec.algorithms = {SelectionAlgorithm::kIndependent};
  spec.attacks = {"static", "bf"};
  spec.trials = 1;
  const CampaignReport rep = run_campaign(spec);
  EXPECT_EQ(rep.profile.cache_builds, 1u);
  EXPECT_EQ(rep.profile.cache_reuses, 1u);
  EXPECT_GE(rep.profile.cache_saved_ms, 0.0);
}

}  // namespace
}  // namespace stt
