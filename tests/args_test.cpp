#include <gtest/gtest.h>

#include "util/args.hpp"

namespace stt {
namespace {

ArgParser make() {
  ArgParser p;
  p.add_option("--in", "input");
  p.add_option("--seed", "seed", "1");
  p.add_flag("--pack", "enable packing");
  return p;
}

TEST(Args, ValueForms) {
  auto p = make();
  p.parse({"--in", "a.bench", "--seed=42"});
  EXPECT_EQ(p.get("--in"), "a.bench");
  EXPECT_EQ(p.get_int("--seed"), 42);
}

TEST(Args, DefaultsApply) {
  auto p = make();
  p.parse({"--in", "x"});
  EXPECT_TRUE(p.has("--seed"));
  EXPECT_EQ(p.get_int("--seed"), 1);
  EXPECT_FALSE(p.flag("--pack"));
}

TEST(Args, FlagsAndPositionals) {
  auto p = make();
  p.parse({"run", "--pack", "extra"});
  EXPECT_TRUE(p.flag("--pack"));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "run");
  EXPECT_EQ(p.positional()[1], "extra");
}

TEST(Args, Errors) {
  auto p = make();
  EXPECT_THROW(p.parse({"--unknown", "1"}), ArgError);
  auto q = make();
  EXPECT_THROW(q.parse({"--in"}), ArgError);           // missing value
  auto r = make();
  EXPECT_THROW(r.parse({"--pack=yes"}), ArgError);     // flag with value
  auto s = make();
  s.parse({});
  EXPECT_THROW(s.get("--in"), ArgError);               // required missing
  EXPECT_EQ(s.get_or("--in", "fallback"), "fallback");
}

TEST(Args, NumericValidation) {
  auto p = make();
  p.parse({"--seed", "abc", "--in", "x"});
  EXPECT_THROW(p.get_int("--seed"), ArgError);
  auto q = make();
  q.parse({"--seed", "2.5", "--in", "x"});
  EXPECT_THROW(q.get_int("--seed"), ArgError);
  EXPECT_DOUBLE_EQ(q.get_double("--seed"), 2.5);
}

TEST(Args, DeclarationValidation) {
  ArgParser p;
  EXPECT_THROW(p.add_option("in", "no dashes"), ArgError);
  EXPECT_THROW(p.add_flag("pack", "no dashes"), ArgError);
}

TEST(Args, HelpListsEverything) {
  const auto p = make();
  const std::string help = p.help();
  EXPECT_NE(help.find("--in"), std::string::npos);
  EXPECT_NE(help.find("--seed"), std::string::npos);
  EXPECT_NE(help.find("default: 1"), std::string::npos);
  EXPECT_NE(help.find("--pack"), std::string::npos);
}

}  // namespace
}  // namespace stt
