#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/bignum.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace stt {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int bound : {1, 2, 3, 10, 1000}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(static_cast<std::uint64_t>(bound)),
                static_cast<std::uint64_t>(bound));
    }
  }
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, SampleDistinct) {
  Rng rng(11);
  std::vector<int> pool{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const auto s = rng.sample(std::span<const int>(pool), 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<int> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 4u);
}

TEST(Rng, SampleMoreThanPoolReturnsAll) {
  Rng rng(11);
  std::vector<int> pool{1, 2, 3};
  const auto s = rng.sample(std::span<const int>(pool), 10);
  EXPECT_EQ(s.size(), 3u);
}

TEST(Rng, SplitIndependence) {
  Rng rng(1);
  Rng child = rng.split();
  EXPECT_NE(rng(), child());
}

// ------------------------------------------------------------- BigNum ----

TEST(BigNum, ZeroBehaviour) {
  const BigNum z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.to_string(), "0");
  EXPECT_TRUE((z * BigNum::from_double(5)).is_zero());
  EXPECT_NEAR((z + BigNum::from_double(5)).to_double(), 5.0, 1e-12);
}

TEST(BigNum, FromDoubleRoundtrip) {
  const BigNum n = BigNum::from_double(123456.0);
  EXPECT_NEAR(n.to_double(), 123456.0, 1e-4);
}

TEST(BigNum, NegativeThrows) {
  EXPECT_THROW(BigNum::from_double(-1.0), std::invalid_argument);
}

TEST(BigNum, MultiplicationAddsExponents) {
  const BigNum a = BigNum::from_mantissa_exp(2.0, 100);
  const BigNum b = BigNum::from_mantissa_exp(3.0, 150);
  const BigNum c = a * b;
  EXPECT_NEAR(c.log10(), std::log10(6.0) + 250.0, 1e-9);
}

TEST(BigNum, AdditionLogSumExp) {
  const BigNum a = BigNum::from_double(3.0);
  const BigNum b = BigNum::from_double(4.0);
  EXPECT_NEAR((a + b).to_double(), 7.0, 1e-9);
}

TEST(BigNum, AdditionSwampedTerm) {
  const BigNum big = BigNum::from_mantissa_exp(1.0, 200);
  const BigNum tiny = BigNum::from_double(1.0);
  EXPECT_NEAR((big + tiny).log10(), 200.0, 1e-12);
}

TEST(BigNum, Pow2) {
  EXPECT_NEAR(BigNum::pow2(10).to_double(), 1024.0, 1e-6);
  EXPECT_NEAR(BigNum::pow2(500).log10(), 500 * std::log10(2.0), 1e-9);
}

TEST(BigNum, PowiMatchesRepeatedMultiply) {
  const BigNum base = BigNum::from_double(2.5);
  BigNum acc = BigNum::from_double(1.0);
  for (int i = 0; i < 7; ++i) acc *= base;
  EXPECT_NEAR(acc.log10(), base.powi(7).log10(), 1e-9);
}

TEST(BigNum, Ordering) {
  const BigNum a = BigNum::from_double(10);
  const BigNum b = BigNum::from_double(20);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(BigNum() < a);
  EXPECT_TRUE(a == BigNum::from_double(10));
}

TEST(BigNum, ScientificFormatting) {
  EXPECT_EQ(BigNum::from_mantissa_exp(6.07, 219).to_string(), "6.07E+219");
  EXPECT_EQ(BigNum::from_double(1.0).to_string(), "1.00E+0");
  EXPECT_EQ(BigNum::from_double(0.05).to_string(), "5.00E-2");
}

TEST(BigNum, FormattingRoundsMantissaOverflow) {
  // 9.999 with 2 digits rounds to 10.00 -> must renormalize to 1.00E+x.
  EXPECT_EQ(BigNum::from_double(9.999).to_string(), "1.00E+1");
}

TEST(BigNum, ToDoubleOverflowsToInf) {
  EXPECT_TRUE(std::isinf(BigNum::pow2(2000).to_double()));
}

// ------------------------------------------------------------ strings ----

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("  "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t a \n"), "a");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Strings, SplitWs) {
  const auto parts = split_ws("  foo   bar\tbaz ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, CaseConversion) {
  EXPECT_EQ(to_lower("NaNd"), "nand");
  EXPECT_EQ(to_upper("NaNd"), "NAND");
  EXPECT_TRUE(iequals("LUT_x", "lut_X"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("LUT_0x8", "LUT_"));
  EXPECT_FALSE(starts_with("LU", "LUT_"));
  EXPECT_TRUE(ends_with("file.bench", ".bench"));
  EXPECT_FALSE(ends_with("b", ".bench"));
}

TEST(Strings, Format) {
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strformat("%.2f%%", 3.14159), "3.14%");
}

// -------------------------------------------------------------- table ----

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"Circuit", "Value"});
  t.add_row({"s641", "11.14"});
  t.add_row({"s38584", "0.21"});
  const std::string out = t.render();
  EXPECT_NE(out.find("s641"), std::string::npos);
  EXPECT_NE(out.find("11.14"), std::string::npos);
  // Every rendered line has the same width.
  std::size_t width = 0;
  for (const auto& line : split(out, '\n')) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, EmptyHeaderThrows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

// -------------------------------------------------------------- stats ----

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.13809, 1e-4);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, EmptyIsZero) {
  const Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.stddev(), 0.0);
}

// -------------------------------------------------------------- timer ----

TEST(Timer, FormatMmSs) {
  EXPECT_EQ(Timer::format_mmss(0.7), "00:00.7");
  EXPECT_EQ(Timer::format_mmss(75.5), "01:15.5");
  EXPECT_EQ(Timer::format_mmss(-3.0), "00:00.0");
}

TEST(Timer, MeasuresElapsed) {
  const Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
}

}  // namespace
}  // namespace stt
