#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Small helper: a = AND(x, y); po(a); ff = DFF(a).
Netlist tiny() {
  Netlist nl("tiny");
  const CellId x = nl.add_input("x");
  const CellId y = nl.add_input("y");
  const CellId a = nl.add_gate(CellKind::kAnd, "a", {x, y});
  const CellId ff = nl.add_dff("ff", a);
  const CellId o = nl.add_gate(CellKind::kOr, "o", {ff, x});
  nl.mark_output(o);
  nl.finalize();
  return nl;
}

TEST(Netlist, BasicConstruction) {
  const Netlist nl = tiny();
  EXPECT_EQ(nl.size(), 5u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.dffs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  const auto s = nl.stats();
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.luts, 0u);
  EXPECT_EQ(s.max_fanin, 2);
}

TEST(Netlist, FindByName) {
  const Netlist nl = tiny();
  EXPECT_NE(nl.find("a"), kNullCell);
  EXPECT_EQ(nl.cell(nl.find("a")).kind, CellKind::kAnd);
  EXPECT_EQ(nl.find("nope"), kNullCell);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_input("x");
  EXPECT_THROW(nl.add_input("x"), std::runtime_error);
}

TEST(Netlist, EmptyNameThrows) {
  Netlist nl;
  EXPECT_THROW(nl.add_input(""), std::runtime_error);
}

TEST(Netlist, IllegalFaninCountThrows) {
  Netlist nl;
  const CellId x = nl.add_input("x");
  EXPECT_THROW(nl.add_gate(CellKind::kAnd, "g", {x}), std::runtime_error);
  EXPECT_THROW(nl.add_gate(CellKind::kNot, "n", {x, x}), std::runtime_error);
}

TEST(Netlist, FanoutsMirrorFanins) {
  const Netlist nl = tiny();
  const CellId x = nl.find("x");
  // x drives gate "a" and gate "o".
  EXPECT_EQ(nl.cell(x).fanouts.size(), 2u);
  nl.check();  // must not throw
}

TEST(Netlist, ReplaceFaninKeepsSync) {
  Netlist nl = tiny();
  const CellId y = nl.find("y");
  const CellId o = nl.find("o");
  nl.replace_fanin(o, 1, y);  // o = OR(ff, y) now
  nl.check();
  EXPECT_EQ(nl.cell(o).fanins[1], y);
  EXPECT_EQ(nl.cell(nl.find("x")).fanouts.size(), 1u);
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  const CellId x = nl.add_input("x");
  const CellId a = nl.add_cell(CellKind::kAnd, "a");
  const CellId b = nl.add_cell(CellKind::kOr, "b");
  nl.connect(a, {x, b});
  nl.connect(b, {a, x});
  EXPECT_THROW(nl.finalize(), std::runtime_error);
}

TEST(Netlist, SequentialLoopIsLegal) {
  // ff feeds logic that feeds ff: a legal state machine.
  Netlist nl;
  const CellId x = nl.add_input("x");
  const CellId ff = nl.add_cell(CellKind::kDff, "ff");
  const CellId g = nl.add_gate(CellKind::kXor, "g", {x, ff});
  nl.connect(ff, {g});
  nl.mark_output(g);
  EXPECT_NO_THROW(nl.finalize());
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = tiny();
  const auto order = nl.topo_order();
  EXPECT_EQ(order.size(), nl.size());
  std::vector<int> position(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = static_cast<int>(i);
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kDff) continue;  // sequential edge exempt
    for (const CellId f : c.fanins) {
      EXPECT_LT(position[f], position[id]);
    }
  }
}

TEST(Netlist, MarkOutputIdempotent) {
  Netlist nl = tiny();
  const CellId o = nl.find("o");
  nl.mark_output(o);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(Netlist, ReplaceWithLutPreservesTruthMask) {
  Netlist nl = tiny();
  const CellId a = nl.find("a");
  const std::uint64_t mask = nl.replace_with_lut(a);
  EXPECT_EQ(mask, gate_truth_mask(CellKind::kAnd, 2));
  EXPECT_EQ(nl.cell(a).kind, CellKind::kLut);
  EXPECT_EQ(nl.cell(a).lut_mask, mask);
  EXPECT_EQ(nl.stats().luts, 1u);
}

TEST(Netlist, ReplaceNonGateThrows) {
  Netlist nl = tiny();
  EXPECT_THROW(nl.replace_with_lut(nl.find("x")), std::runtime_error);
  EXPECT_THROW(nl.replace_with_lut(nl.find("ff")), std::runtime_error);
}

TEST(Netlist, StructuralEquality) {
  const Netlist a = tiny();
  Netlist b = tiny();
  EXPECT_TRUE(a.structurally_equal(b));
  b.replace_with_lut(b.find("a"));
  EXPECT_FALSE(a.structurally_equal(b));
}

TEST(Netlist, CopyIsDeep) {
  Netlist a = tiny();
  Netlist b = a;
  b.replace_with_lut(b.find("a"));
  EXPECT_EQ(a.cell(a.find("a")).kind, CellKind::kAnd);
}

// Property: replacing any replaceable gate with a functionality-preserving
// LUT leaves the circuit's observable behaviour unchanged, checked by
// random bit-parallel simulation on generated circuits.
class LutReplacementEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(LutReplacementEquivalence, RandomCircuit) {
  const int seed = GetParam();
  CircuitProfile profile{"prop", 6, 4, 4, 60, 6};
  const Netlist original = generate_circuit(profile, seed);
  Netlist hybrid = original;

  Rng rng(seed * 977 + 5);
  int replaced = 0;
  for (const CellId id : hybrid.logic_cells()) {
    if (is_replaceable_gate(hybrid.cell(id).kind) &&
        hybrid.cell(id).fanin_count() <= kMaxLutInputs && rng.chance(0.4)) {
      hybrid.replace_with_lut(id);
      ++replaced;
    }
  }
  ASSERT_GT(replaced, 0);
  hybrid.check();

  const Simulator sim_a(original);
  const Simulator sim_b(hybrid);
  std::vector<std::uint64_t> pis(original.inputs().size());
  std::vector<std::uint64_t> ffs(original.dffs().size());
  for (int round = 0; round < 8; ++round) {
    for (auto& w : pis) w = rng();
    for (auto& w : ffs) w = rng();
    const auto wa = sim_a.eval_comb(pis, ffs);
    const auto wb = sim_b.eval_comb(pis, ffs);
    EXPECT_EQ(sim_a.outputs_of(wa), sim_b.outputs_of(wb));
    EXPECT_EQ(sim_a.next_state_of(wa), sim_b.next_state_of(wb));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutReplacementEquivalence,
                         ::testing::Range(1, 13));

}  // namespace
}  // namespace stt
