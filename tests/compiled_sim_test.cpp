// Compiled batch simulation engine: equivalence against an independent
// reference evaluator on randomly generated netlists, bit-identical results
// across batch widths and thread counts, in-place mask patching, and the
// word-batched oracle's query accounting.
#include <gtest/gtest.h>

#include <vector>

#include "attack/oracle.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/compiled.hpp"
#include "sim/isa.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"

namespace stt {
namespace {

// Independent reference: per-lane naive evaluation via eval_gate / direct
// truth-table row lookup — shares no code with the compiled kernels (in
// particular not eval_cell_word's specialized LUT paths).
std::vector<std::uint64_t> ref_eval(const Netlist& nl,
                                    std::span<const std::uint64_t> pi,
                                    std::span<const std::uint64_t> ff) {
  std::vector<std::uint64_t> wave(nl.size(), 0);
  for (std::size_t i = 0; i < pi.size(); ++i) wave[nl.inputs()[i]] = pi[i];
  for (std::size_t j = 0; j < ff.size(); ++j) wave[nl.dffs()[j]] = ff[j];
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    std::uint64_t out = 0;
    for (int lane = 0; lane < 64; ++lane) {
      std::uint32_t assignment = 0;
      for (int i = 0; i < c.fanin_count(); ++i) {
        if ((wave[c.fanins[i]] >> lane) & 1ull) assignment |= (1u << i);
      }
      bool bit = false;
      switch (c.kind) {
        case CellKind::kConst0:
          bit = false;
          break;
        case CellKind::kConst1:
          bit = true;
          break;
        case CellKind::kLut:
          bit = (c.lut_mask >> assignment) & 1ull;
          break;
        default:
          bit = eval_gate(c.kind, assignment, c.fanin_count());
          break;
      }
      if (bit) out |= (1ull << lane);
    }
    wave[id] = out;
  }
  return wave;
}

// A generated circuit with a random subset of gates converted to LUTs with
// random masks (dense masks included, to exercise the complement path).
Netlist locked_circuit(int seed, int gates = 120) {
  CircuitProfile profile{"cs", 8, 6, 5, gates, 7};
  Netlist nl = generate_circuit(profile, static_cast<std::uint64_t>(seed));
  Rng rng(seed * 31 + 7);
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (!is_replaceable_gate(c.kind) || c.fanin_count() > kMaxLutInputs) {
      continue;
    }
    if (!rng.chance(0.3)) continue;
    nl.replace_with_lut(id, rng() & full_mask(c.fanin_count()));
  }
  return nl;
}

void random_stimulus(Rng& rng, const Netlist& nl,
                     std::vector<std::uint64_t>& pi,
                     std::vector<std::uint64_t>& ff) {
  pi.resize(nl.inputs().size());
  ff.resize(nl.dffs().size());
  for (auto& w : pi) w = rng();
  for (auto& w : ff) w = rng();
}

class CompiledVsReference : public ::testing::TestWithParam<int> {};

TEST_P(CompiledVsReference, RandomNetlistsMatch) {
  const int seed = GetParam();
  const Netlist nl = locked_circuit(seed);
  const CompiledSim csim(nl);
  const Simulator sim(nl);
  Rng rng(seed * 977);
  std::vector<std::uint64_t> pi, ff;
  std::vector<std::uint64_t> wave(csim.wave_size());
  for (int trial = 0; trial < 8; ++trial) {
    random_stimulus(rng, nl, pi, ff);
    const auto expect = ref_eval(nl, pi, ff);
    csim.eval_word(pi, ff, wave);
    ASSERT_EQ(wave.size(), expect.size());
    for (std::size_t id = 0; id < wave.size(); ++id) {
      ASSERT_EQ(wave[id], expect[id]) << "seed " << seed << " cell " << id;
    }
    // The ported Simulator must agree with its own compiled engine.
    EXPECT_EQ(sim.eval_comb(pi, ff), expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledVsReference, ::testing::Range(1, 9));

TEST(CompiledSim, BatchWidthAndThreadCountInvariance) {
  const Netlist nl = locked_circuit(3, 150);
  const CompiledSim csim(nl);
  Rng rng(555);
  constexpr std::size_t kWords = 21;  // not a multiple of the block size
  const std::size_t n_pi = csim.num_inputs();
  const std::size_t n_ff = csim.num_dffs();
  std::vector<std::uint64_t> pi(n_pi * kWords), ff(n_ff * kWords);
  for (auto& w : pi) w = rng();
  for (auto& w : ff) w = rng();

  // Reference: word-at-a-time over the same lanes.
  std::vector<std::uint64_t> expect(csim.wave_size() * kWords);
  {
    std::vector<std::uint64_t> pw(n_pi), fw(n_ff),
        wave(csim.wave_size());
    for (std::size_t w = 0; w < kWords; ++w) {
      for (std::size_t i = 0; i < n_pi; ++i) pw[i] = pi[i * kWords + w];
      for (std::size_t j = 0; j < n_ff; ++j) fw[j] = ff[j * kWords + w];
      csim.eval_word(pw, fw, wave);
      for (std::size_t r = 0; r < csim.wave_size(); ++r) {
        expect[r * kWords + w] = wave[r];
      }
    }
  }

  std::vector<std::uint64_t> wave(csim.wave_size() * kWords);
  csim.eval_batch(kWords, pi, ff, wave);
  EXPECT_EQ(wave, expect) << "serial batch differs from word-at-a-time";

  for (const unsigned threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    ThreadPoolParallelFor par(pool);
    std::vector<std::uint64_t> tw(csim.wave_size() * kWords, 0);
    csim.eval_batch(kWords, pi, ff, tw, &par);
    EXPECT_EQ(tw, expect) << threads << " threads";
  }

  // Smaller widths over the leading lanes agree with the wide batch.
  for (const std::size_t W : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    std::vector<std::uint64_t> spi(n_pi * W), sff(n_ff * W),
        sw(csim.wave_size() * W);
    for (std::size_t i = 0; i < n_pi; ++i) {
      for (std::size_t w = 0; w < W; ++w) spi[i * W + w] = pi[i * kWords + w];
    }
    for (std::size_t j = 0; j < n_ff; ++j) {
      for (std::size_t w = 0; w < W; ++w) sff[j * W + w] = ff[j * kWords + w];
    }
    csim.eval_batch(W, spi, sff, sw);
    for (std::size_t r = 0; r < csim.wave_size(); ++r) {
      for (std::size_t w = 0; w < W; ++w) {
        ASSERT_EQ(sw[r * W + w], expect[r * kWords + w]) << "W=" << W;
      }
    }
  }
}

TEST(CompiledSim, SetLutMaskMatchesRecompile) {
  Netlist nl = locked_circuit(5);
  CompiledSim csim(nl);
  Rng rng(99);
  std::vector<CellId> luts;
  for (CellId id = 0; id < nl.size(); ++id) {
    if (nl.cell(id).kind == CellKind::kLut) luts.push_back(id);
  }
  ASSERT_FALSE(luts.empty());
  std::vector<std::uint64_t> pi, ff;
  random_stimulus(rng, nl, pi, ff);
  for (int trial = 0; trial < 6; ++trial) {
    const CellId id = rng.pick(luts);
    const std::uint64_t mask = rng() & full_mask(nl.cell(id).fanin_count());
    csim.set_lut_mask(id, mask);
    nl.cell(id).lut_mask = mask;
    EXPECT_EQ(csim.lut_mask(id), mask);
    const CompiledSim fresh(nl);
    std::vector<std::uint64_t> a(csim.wave_size()), b(csim.wave_size());
    csim.eval_word(pi, ff, a);
    fresh.eval_word(pi, ff, b);
    EXPECT_EQ(a, b) << "patched engine differs from recompiled engine";
  }
  EXPECT_THROW(csim.set_lut_mask(nl.inputs()[0], 1), std::invalid_argument);
}

TEST(Simulator, SeesLiveMaskAndKindEdits) {
  // Historical contract: mask edits and in-place gate->LUT conversions made
  // after construction are visible to the next eval_comb.
  Netlist nl = locked_circuit(7);
  const Simulator sim(nl);
  Rng rng(1234);
  std::vector<std::uint64_t> pi, ff;
  random_stimulus(rng, nl, pi, ff);
  (void)sim.eval_comb(pi, ff);  // compile + evaluate once

  CellId gate = kNullCell;
  for (const CellId id : nl.logic_cells()) {
    const Cell& c = nl.cell(id);
    if (is_replaceable_gate(c.kind) && c.kind != CellKind::kLut &&
        c.fanin_count() <= kMaxLutInputs) {
      gate = id;
      break;
    }
  }
  ASSERT_NE(gate, kNullCell);
  // In-place gate -> LUT conversion with a random mask, same fan-ins.
  nl.replace_with_lut(gate, rng() & full_mask(nl.cell(gate).fanin_count()));
  EXPECT_EQ(sim.eval_comb(pi, ff), ref_eval(nl, pi, ff));
}

TEST(SequentialSimulator, StepIntoMatchesStepWithoutReallocation) {
  const Netlist nl = locked_circuit(11);
  SequentialSimulator a(nl);
  SequentialSimulator b(nl);
  a.reset(false);
  b.reset(false);
  Rng rng(31);
  std::vector<std::uint64_t> pi(nl.inputs().size());
  std::vector<std::uint64_t> po(nl.outputs().size());
  const std::uint64_t* wave_data = a.last_wave().data();
  for (int cycle = 0; cycle < 12; ++cycle) {
    for (auto& w : pi) w = rng();
    a.step_into(pi, po);
    const auto expect = b.step(pi);
    ASSERT_EQ(po.size(), expect.size());
    for (std::size_t o = 0; o < po.size(); ++o) EXPECT_EQ(po[o], expect[o]);
    for (std::size_t j = 0; j < nl.dffs().size(); ++j) {
      EXPECT_EQ(a.state()[j], b.state()[j]);
    }
    // The wave buffer is reused, never reallocated.
    EXPECT_EQ(a.last_wave().data(), wave_data);
  }
}

TEST(ScanOracle, QueryWordMatches64SingleQueries) {
  const Netlist nl = locked_circuit(13);
  ScanOracle word_oracle(nl);
  ScanOracle single_oracle(nl);
  Rng rng(71);
  const std::size_t n_in = word_oracle.num_inputs();
  const std::size_t n_out = word_oracle.num_outputs();
  std::vector<std::uint64_t> in(n_in), out(n_out);
  for (auto& w : in) w = rng();
  word_oracle.query_word(in, out);
  for (int b = 0; b < 64; b += 7) {
    std::vector<bool> pattern(n_in);
    for (std::size_t i = 0; i < n_in; ++i) pattern[i] = (in[i] >> b) & 1ull;
    const auto response = single_oracle.query(pattern);
    for (std::size_t o = 0; o < n_out; ++o) {
      EXPECT_EQ(response[o], static_cast<bool>((out[o] >> b) & 1ull))
          << "lane " << b << " output " << o;
    }
  }
}

TEST(ScanOracle, QueryAccountingStaysHonestAcrossGranularities) {
  const Netlist nl = locked_circuit(17);
  ScanOracle oracle(nl);
  const std::size_t n_in = oracle.num_inputs();
  const std::size_t n_out = oracle.num_outputs();
  EXPECT_EQ(oracle.queries(), 0u);

  oracle.query(std::vector<bool>(n_in, false));
  EXPECT_EQ(oracle.queries(), 1u);

  std::vector<std::uint64_t> in(n_in, 5), out(n_out);
  oracle.query_word(in, out);
  EXPECT_EQ(oracle.queries(), 1u + 64u);

  // 64 queries per word, for every batch width and thread count.
  for (const std::size_t W : {std::size_t{1}, std::size_t{3}}) {
    const std::uint64_t before = oracle.queries();
    std::vector<std::uint64_t> bin(n_in * W, 9), bout(n_out * W);
    oracle.query_batch(W, bin, bout);
    EXPECT_EQ(oracle.queries(), before + 64 * W);
  }
  ThreadPool pool(2);
  ThreadPoolParallelFor par(pool);
  const std::uint64_t before = oracle.queries();
  std::vector<std::uint64_t> bin(n_in * 4, 3), bout(n_out * 4);
  oracle.query_batch(4, bin, bout, &par);
  EXPECT_EQ(oracle.queries(), before + 64 * 4);
}

TEST(ScanOracle, BatchMatchesWordQueries) {
  const Netlist nl = locked_circuit(19);
  ScanOracle batch_oracle(nl);
  ScanOracle word_oracle(nl);
  Rng rng(41);
  constexpr std::size_t kWords = 11;
  const std::size_t n_in = batch_oracle.num_inputs();
  const std::size_t n_out = batch_oracle.num_outputs();
  std::vector<std::uint64_t> in(n_in * kWords), out(n_out * kWords);
  for (auto& w : in) w = rng();

  ThreadPool pool(3);
  ThreadPoolParallelFor par(pool);
  batch_oracle.query_batch(kWords, in, out, &par);

  std::vector<std::uint64_t> win(n_in), wout(n_out);
  for (std::size_t w = 0; w < kWords; ++w) {
    for (std::size_t i = 0; i < n_in; ++i) win[i] = in[i * kWords + w];
    word_oracle.query_word(win, wout);
    for (std::size_t o = 0; o < n_out; ++o) {
      EXPECT_EQ(wout[o], out[o * kWords + w]) << "word " << w;
    }
  }
}

std::vector<SimIsa> supported_isas() {
  std::vector<SimIsa> isas;
  for (const SimIsa isa : {SimIsa::kScalar, SimIsa::kAvx2, SimIsa::kAvx512}) {
    if (sim_isa_supported(isa)) isas.push_back(isa);
  }
  return isas;
}

TEST(SimIsa, NamesParseAndLaneWidthsAreCanonical) {
  for (const SimIsa isa :
       {SimIsa::kScalar, SimIsa::kAvx2, SimIsa::kAvx512}) {
    const auto parsed = parse_sim_isa(sim_isa_name(isa));
    ASSERT_TRUE(parsed.has_value()) << sim_isa_name(isa);
    EXPECT_EQ(*parsed, isa);
  }
  EXPECT_EQ(sim_lane_words(SimIsa::kScalar), 1u);
  EXPECT_EQ(sim_lane_words(SimIsa::kAvx2), 4u);
  EXPECT_EQ(sim_lane_words(SimIsa::kAvx512), 8u);
  EXPECT_FALSE(parse_sim_isa("sse2").has_value());
  EXPECT_FALSE(parse_sim_isa("AVX2").has_value());  // names are lowercase
  EXPECT_FALSE(parse_sim_isa("").has_value());
  EXPECT_TRUE(sim_isa_supported(SimIsa::kScalar));
  EXPECT_THROW(set_sim_isa("notanisa"), std::runtime_error);
}

TEST(SimIsa, PaddedWordsRoundsUpToWholeLanes) {
  for (const SimIsa isa : supported_isas()) {
    ScopedSimIsa forced(isa);
    const std::size_t lane = sim_lane_words(isa);
    EXPECT_EQ(CompiledSim::lane_words(), lane);
    EXPECT_EQ(CompiledSim::padded_words(0), 0u);
    EXPECT_EQ(CompiledSim::padded_words(1), lane);
    EXPECT_EQ(CompiledSim::padded_words(lane), lane);
    EXPECT_EQ(CompiledSim::padded_words(lane + 1), 2 * lane);
  }
}

// Every supported kernel must produce bit-identical waves for every batch
// width — including widths that are not a multiple of the lane width, which
// exercise the scalar tail after the lane main loop.
TEST(SimIsaMatrix, ForcedIsasAreBitIdenticalAcrossMisalignedWidths) {
  const Netlist nl = locked_circuit(23, 160);
  const CompiledSim csim(nl);
  const std::size_t n_pi = csim.num_inputs();
  const std::size_t n_ff = csim.num_dffs();
  Rng rng(2023);
  for (const std::size_t W :
       {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{8},
        std::size_t{13}, std::size_t{32}}) {
    std::vector<std::uint64_t> pi(n_pi * W), ff(n_ff * W);
    for (auto& w : pi) w = rng();
    for (auto& w : ff) w = rng();
    std::vector<std::uint64_t> expect(csim.wave_size() * W);
    {
      ScopedSimIsa forced(SimIsa::kScalar);
      csim.eval_batch(W, pi, ff, expect);
    }
    for (const SimIsa isa : supported_isas()) {
      ScopedSimIsa forced(isa);
      std::vector<std::uint64_t> wave(csim.wave_size() * W, ~0ull);
      csim.eval_batch(W, pi, ff, wave);
      EXPECT_EQ(wave, expect) << sim_isa_name(isa) << " W=" << W;
      ThreadPool pool(2);
      ThreadPoolParallelFor par(pool);
      std::vector<std::uint64_t> tw(csim.wave_size() * W, ~0ull);
      csim.eval_batch(W, pi, ff, tw, &par);
      EXPECT_EQ(tw, expect) << sim_isa_name(isa) << " threaded W=" << W;
    }
  }
}

// Live mask patches and whole-netlist resyncs must be visible to the very
// next evaluation under every kernel, exactly as under the scalar one.
TEST(SimIsaMatrix, LiveMaskEditsLandUnderWideLanes) {
  for (const SimIsa isa : supported_isas()) {
    ScopedSimIsa forced(isa);
    Netlist nl = locked_circuit(29);
    CompiledSim csim(nl);
    Rng rng(507);
    std::vector<CellId> luts;
    for (CellId id = 0; id < nl.size(); ++id) {
      if (nl.cell(id).kind == CellKind::kLut) luts.push_back(id);
    }
    ASSERT_FALSE(luts.empty());
    const std::size_t W = sim_lane_words(isa) * 2 + 1;  // forces a tail
    const std::size_t n_pi = csim.num_inputs();
    const std::size_t n_ff = csim.num_dffs();
    std::vector<std::uint64_t> pi(n_pi * W), ff(n_ff * W);
    for (auto& w : pi) w = rng();
    for (auto& w : ff) w = rng();
    for (int trial = 0; trial < 4; ++trial) {
      const CellId id = rng.pick(luts);
      const std::uint64_t mask = rng() & full_mask(nl.cell(id).fanin_count());
      csim.set_lut_mask(id, mask);
      nl.cell(id).lut_mask = mask;
      const CompiledSim fresh(nl);
      std::vector<std::uint64_t> a(csim.wave_size() * W);
      std::vector<std::uint64_t> b(csim.wave_size() * W);
      csim.eval_batch(W, pi, ff, a);
      fresh.eval_batch(W, pi, ff, b);
      EXPECT_EQ(a, b) << sim_isa_name(isa) << " trial " << trial;
    }
    // Whole-netlist resync after direct mask edits.
    for (const CellId id : luts) {
      nl.cell(id).lut_mask =
          rng() & full_mask(nl.cell(id).fanin_count());
    }
    csim.resync_functions();
    const CompiledSim fresh(nl);
    std::vector<std::uint64_t> a(csim.wave_size() * W);
    std::vector<std::uint64_t> b(csim.wave_size() * W);
    csim.eval_batch(W, pi, ff, a);
    fresh.eval_batch(W, pi, ff, b);
    EXPECT_EQ(a, b) << sim_isa_name(isa) << " after resync_functions";
  }
}

// Regression: the oracle sizes its scratch wave from the active lane width.
// A scalar-sized scratch (wave_size() words) under a wide kernel would let
// the lane main loop write past the buffer; single-pattern and word queries
// must work under the widest ISA, including interleaved with wide batches.
TEST(ScanOracle, ScalarQueriesSizeScratchForActiveLaneWidth) {
  const Netlist nl = locked_circuit(37);
  std::vector<std::vector<std::uint64_t>> word_responses;
  std::vector<std::vector<bool>> single_responses;
  for (const SimIsa isa : supported_isas()) {
    ScopedSimIsa forced(isa);
    ScanOracle oracle(nl);  // scratch starts at one lane of W=1
    Rng rng(86);
    const std::size_t n_in = oracle.num_inputs();
    const std::size_t n_out = oracle.num_outputs();
    std::vector<std::uint64_t> in(n_in), out(n_out);
    for (auto& w : in) w = rng();
    oracle.query_word(in, out);
    word_responses.push_back(out);
    std::vector<bool> pattern(n_in);
    for (std::size_t i = 0; i < n_in; ++i) pattern[i] = (in[i] >> 17) & 1ull;
    single_responses.push_back(oracle.query(pattern));
    // A wide batch grows the scratch; scalar queries after it still agree.
    constexpr std::size_t kWords = 9;
    std::vector<std::uint64_t> bin(n_in * kWords), bout(n_out * kWords);
    for (auto& w : bin) w = rng();
    oracle.query_batch(kWords, bin, bout);
    oracle.query_word(in, out);
    EXPECT_EQ(out, word_responses.back()) << sim_isa_name(isa);
    EXPECT_EQ(oracle.queries(), 64u + 1u + 64u * kWords + 64u);
  }
  for (std::size_t i = 1; i < word_responses.size(); ++i) {
    EXPECT_EQ(word_responses[i], word_responses[0]) << "ISA row " << i;
    EXPECT_EQ(single_responses[i], single_responses[0]) << "ISA row " << i;
  }
}

TEST(EvalCellWord, DenseLutMasksUseComplementPathCorrectly) {
  Rng rng(8);
  for (int k = 3; k <= kMaxLutInputs; ++k) {
    for (int trial = 0; trial < 20; ++trial) {
      Cell cell;
      cell.kind = CellKind::kLut;
      // Bias dense: OR of two draws asserts ~75% of rows on average.
      cell.lut_mask = (rng() | rng()) & full_mask(k);
      std::vector<std::uint64_t> words(k);
      for (int i = 0; i < k; ++i) {
        for (std::uint32_t row = 0; row < num_rows(k); ++row) {
          if (row & (1u << i)) words[i] |= (1ull << row);
        }
      }
      const std::uint64_t out = eval_cell_word(cell, words);
      EXPECT_EQ(out & full_mask(k), cell.lut_mask) << "k=" << k;
    }
  }
}

}  // namespace
}  // namespace stt
