#include <gtest/gtest.h>

#include "synth/generator.hpp"
#include "timing/sta.hpp"

namespace stt {
namespace {

TEST(Sta, ChainDelayAccumulates) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId g2 = nl.add_gate(CellKind::kNand, "g2", {g1, b});
  nl.mark_output(g2);
  nl.finalize();

  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  // g1 drives one reader, g2 drives none.
  const double d_nand = lib.gate(CellKind::kNand, 2).delay_ps;
  const double expect = (d_nand + lib.load_delay_ps()) + d_nand;
  EXPECT_NEAR(t.critical_delay_ps, expect, 1e-9);
  EXPECT_EQ(t.worst_endpoint, g2);
  ASSERT_EQ(t.critical_path.size(), 3u);  // a/b -> g1 -> g2
  EXPECT_EQ(t.critical_path.back(), g2);
  EXPECT_EQ(t.critical_path[1], g1);
}

TEST(Sta, DffLaunchAndSetup) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId ff = nl.add_cell(CellKind::kDff, "ff");
  const CellId g = nl.add_gate(CellKind::kNand, "g", {ff, a});
  nl.connect(ff, {g});
  nl.mark_output(g);
  nl.finalize();

  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  // Worst endpoint: the DFF D pin (arrival of g + setup) vs PO (arrival g).
  const double clk_q = lib.dff_clk_to_q_ps() + lib.load_delay_ps();
  const double arr_g = clk_q + lib.gate(CellKind::kNand, 2).delay_ps +
                       lib.load_delay_ps();  // g drives the ff D pin only
  EXPECT_NEAR(t.critical_delay_ps, arr_g + lib.dff_setup_ps(), 1e-9);
}

TEST(Sta, LutReplacementIncreasesDelay) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  CircuitProfile profile{"sta", 8, 6, 5, 100, 8};
  Netlist nl = generate_circuit(profile, 4);
  const Sta sta(lib);
  const double before = sta.analyze(nl).critical_delay_ps;

  // Replace every gate on the critical path that is replaceable.
  const auto t = sta.analyze(nl);
  int replaced = 0;
  for (const CellId id : t.critical_path) {
    if (is_replaceable_gate(nl.cell(id).kind) &&
        nl.cell(id).fanin_count() <= kMaxLutInputs) {
      nl.replace_with_lut(id);
      ++replaced;
    }
  }
  ASSERT_GT(replaced, 0);
  const double after = sta.analyze(nl).critical_delay_ps;
  EXPECT_GT(after, before);
}

TEST(Sta, SlackSignsAgainstPeriod) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  CircuitProfile profile{"slack", 8, 6, 5, 120, 8};
  const Netlist nl = generate_circuit(profile, 5);
  const Sta sta(lib);
  const auto t = sta.analyze(nl);

  // At a period equal to the critical delay, no cell has negative slack and
  // the endpoint of the critical path has (near) zero slack.
  const auto s_ok = sta.slacks(nl, t, t.critical_delay_ps);
  double min_slack = 1e300;
  for (const CellId id : nl.topo_order()) {
    if (nl.cell(id).kind == CellKind::kInput) continue;
    min_slack = std::min(min_slack, s_ok[id]);
  }
  EXPECT_GE(min_slack, -1e-6);
  EXPECT_NEAR(min_slack, 0.0, 1e-6);

  // Tightening the period makes some slack negative.
  const auto s_bad = sta.slacks(nl, t, t.critical_delay_ps * 0.5);
  bool negative = false;
  for (const CellId id : nl.topo_order()) {
    if (s_bad[id] < 0) negative = true;
  }
  EXPECT_TRUE(negative);
}

TEST(Sta, CriticalPathIsConnected) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  CircuitProfile profile{"crit", 8, 6, 5, 150, 10};
  const Netlist nl = generate_circuit(profile, 6);
  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  ASSERT_GE(t.critical_path.size(), 2u);
  for (std::size_t i = 1; i < t.critical_path.size(); ++i) {
    const auto& fi = nl.cell(t.critical_path[i]).fanins;
    EXPECT_NE(std::find(fi.begin(), fi.end(), t.critical_path[i - 1]),
              fi.end());
  }
}

TEST(Sta, MonotoneNonDecreasingArrivals) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  CircuitProfile profile{"mono", 6, 5, 4, 80, 7};
  const Netlist nl = generate_circuit(profile, 7);
  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    for (const CellId f : c.fanins) {
      EXPECT_GE(t.arrival_ps[id], t.arrival_ps[f]);
    }
  }
}

TEST(Sta, PureCombinationalCircuit) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  Netlist nl;
  const CellId a = nl.add_input("a");
  const CellId n = nl.add_gate(CellKind::kNot, "n", {a});
  nl.mark_output(n);
  nl.finalize();
  const Sta sta(lib);
  const auto t = sta.analyze(nl);
  EXPECT_NEAR(t.critical_delay_ps, lib.gate(CellKind::kNot, 1).delay_ps, 1e-9);
}

}  // namespace
}  // namespace stt
