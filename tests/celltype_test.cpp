#include <gtest/gtest.h>

#include <bit>
#include <tuple>

#include "netlist/celltype.hpp"

namespace stt {
namespace {

TEST(CellKindNames, Roundtrip) {
  for (const CellKind kind :
       {CellKind::kInput, CellKind::kConst0, CellKind::kConst1, CellKind::kBuf,
        CellKind::kNot, CellKind::kAnd, CellKind::kNand, CellKind::kOr,
        CellKind::kNor, CellKind::kXor, CellKind::kXnor, CellKind::kDff,
        CellKind::kLut}) {
    const auto parsed = kind_from_name(kind_name(kind));
    ASSERT_TRUE(parsed.has_value()) << kind_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(CellKindNames, Aliases) {
  EXPECT_EQ(kind_from_name("buff"), CellKind::kBuf);
  EXPECT_EQ(kind_from_name("INV"), CellKind::kNot);
  EXPECT_EQ(kind_from_name("ff"), CellKind::kDff);
  EXPECT_EQ(kind_from_name("vdd"), CellKind::kConst1);
  EXPECT_EQ(kind_from_name("gnd"), CellKind::kConst0);
  EXPECT_EQ(kind_from_name("nand"), CellKind::kNand);  // case-insensitive
  EXPECT_FALSE(kind_from_name("MUX21").has_value());
}

TEST(Replaceability, OnlyLogicGates) {
  EXPECT_TRUE(is_replaceable_gate(CellKind::kNand));
  EXPECT_TRUE(is_replaceable_gate(CellKind::kNot));
  EXPECT_TRUE(is_replaceable_gate(CellKind::kBuf));
  EXPECT_FALSE(is_replaceable_gate(CellKind::kDff));
  EXPECT_FALSE(is_replaceable_gate(CellKind::kInput));
  EXPECT_FALSE(is_replaceable_gate(CellKind::kLut));
  EXPECT_FALSE(is_replaceable_gate(CellKind::kConst1));
}

TEST(Combinationality, Classification) {
  EXPECT_FALSE(is_combinational(CellKind::kInput));
  EXPECT_FALSE(is_combinational(CellKind::kDff));
  EXPECT_TRUE(is_combinational(CellKind::kLut));
  EXPECT_TRUE(is_combinational(CellKind::kConst0));
  EXPECT_TRUE(is_combinational(CellKind::kXnor));
}

TEST(EvalGate, TwoInputTruthTables) {
  // rows: 00, 01, 10, 11 (fan-in 0 = LSB)
  EXPECT_EQ(gate_truth_mask(CellKind::kAnd, 2), 0b1000ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kNand, 2), 0b0111ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kOr, 2), 0b1110ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kNor, 2), 0b0001ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kXor, 2), 0b0110ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kXnor, 2), 0b1001ull);
}

TEST(EvalGate, UnaryAndConst) {
  EXPECT_EQ(gate_truth_mask(CellKind::kBuf, 1), 0b10ull);
  EXPECT_EQ(gate_truth_mask(CellKind::kNot, 1), 0b01ull);
  EXPECT_FALSE(eval_gate(CellKind::kConst0, 0, 0));
  EXPECT_TRUE(eval_gate(CellKind::kConst1, 0, 0));
}

TEST(EvalGate, MultiInputXorIsParity) {
  for (int k = 2; k <= kMaxLutInputs; ++k) {
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      EXPECT_EQ(eval_gate(CellKind::kXor, row, k),
                (std::popcount(row) & 1) != 0);
      EXPECT_EQ(eval_gate(CellKind::kXnor, row, k),
                (std::popcount(row) & 1) == 0);
    }
  }
}

TEST(EvalGate, InvalidKindThrows) {
  EXPECT_THROW(eval_gate(CellKind::kInput, 0, 0), std::invalid_argument);
  EXPECT_THROW(eval_gate(CellKind::kDff, 0, 1), std::invalid_argument);
  EXPECT_THROW(eval_gate(CellKind::kLut, 0, 2), std::invalid_argument);
}

TEST(TruthMask, IllegalFaninThrows) {
  EXPECT_THROW(gate_truth_mask(CellKind::kAnd, 1), std::invalid_argument);
  EXPECT_THROW(gate_truth_mask(CellKind::kNot, 2), std::invalid_argument);
  EXPECT_THROW(gate_truth_mask(CellKind::kAnd, kMaxLutInputs + 1),
               std::invalid_argument);
}

TEST(FullMask, Widths) {
  EXPECT_EQ(full_mask(1), 0b11ull);
  EXPECT_EQ(full_mask(2), 0xFull);
  EXPECT_EQ(full_mask(4), 0xFFFFull);
  EXPECT_EQ(full_mask(6), ~0ull);
}

TEST(FaninRange, PerKind) {
  EXPECT_EQ(fanin_range(CellKind::kInput).max, 0);
  EXPECT_EQ(fanin_range(CellKind::kNot).min, 1);
  EXPECT_EQ(fanin_range(CellKind::kNot).max, 1);
  EXPECT_EQ(fanin_range(CellKind::kAnd).min, 2);
  EXPECT_EQ(fanin_range(CellKind::kAnd).max, kMaxGateInputs);
  EXPECT_EQ(fanin_range(CellKind::kLut).min, 1);
  EXPECT_EQ(fanin_range(CellKind::kDff).min, 1);
}

// Property sweep: complementary gate pairs have complementary truth masks
// at every fan-in.
using GatePair = std::tuple<CellKind, CellKind>;
class ComplementaryGates
    : public ::testing::TestWithParam<std::tuple<GatePair, int>> {};

TEST_P(ComplementaryGates, MasksAreComplements) {
  const auto [pair, fanin] = GetParam();
  const auto [a, b] = pair;
  const std::uint64_t ma = gate_truth_mask(a, fanin);
  const std::uint64_t mb = gate_truth_mask(b, fanin);
  EXPECT_EQ(ma ^ mb, full_mask(fanin));
}

INSTANTIATE_TEST_SUITE_P(
    AllFanins, ComplementaryGates,
    ::testing::Combine(
        ::testing::Values(GatePair{CellKind::kAnd, CellKind::kNand},
                          GatePair{CellKind::kOr, CellKind::kNor},
                          GatePair{CellKind::kXor, CellKind::kXnor}),
        ::testing::Range(2, kMaxLutInputs + 1)));

// Property sweep: eval_gate agrees with the truth mask bit for every row.
class EvalMatchesMask
    : public ::testing::TestWithParam<std::tuple<CellKind, int>> {};

TEST_P(EvalMatchesMask, AllRows) {
  const auto [kind, fanin] = GetParam();
  const std::uint64_t mask = gate_truth_mask(kind, fanin);
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    EXPECT_EQ(eval_gate(kind, row, fanin), ((mask >> row) & 1ull) != 0)
        << kind_name(kind) << " fanin=" << fanin << " row=" << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    StandardGates, EvalMatchesMask,
    ::testing::Combine(::testing::Values(CellKind::kAnd, CellKind::kNand,
                                         CellKind::kOr, CellKind::kNor,
                                         CellKind::kXor, CellKind::kXnor),
                       ::testing::Range(2, kMaxLutInputs + 1)));

TEST(EvalGate, IgnoresBitsAboveFanin) {
  // High garbage bits in the input word must not affect the result.
  EXPECT_TRUE(eval_gate(CellKind::kAnd, 0b111111u, 2));
  EXPECT_FALSE(eval_gate(CellKind::kOr, 0b111100u, 2));
}

}  // namespace
}  // namespace stt
