// Defense registry: every registered kind must lock a benchmark such that
// the locked netlist plus the correct key is I/O-equivalent to the original
// (and a wrong key is not), the paper adapters must stay bit-identical to
// direct run_secure_flow calls, and the SAT attack must recover a working
// key through the unified attack API.
#include "defense/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "attack/registry.hpp"
#include "core/flow.hpp"
#include "core/hybrid.hpp"
#include "sim/compiled.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "verify/lint.hpp"

namespace stt {
namespace {

const TechLibrary& lib() {
  static const TechLibrary l = TechLibrary::cmos90_stt();
  return l;
}

Netlist bench(const char* name, std::uint64_t seed) {
  const auto profile = find_profile(name);
  EXPECT_TRUE(profile.has_value()) << name;
  return generate_circuit(*profile, seed);
}

/// FNV-1a over a string, for order-independent per-net stimulus.
std::uint64_t fnv(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Sequential I/O checksum over 64 random lanes x `cycles` steps from the
/// all-zero state. Stimulus and output folding are keyed by *net name*, so
/// two netlists with the same PI/PO names get comparable checksums even if
/// cell ids, cell counts or flip-flop sets differ (defenses add decoy state
/// and strip dead logic).
std::uint64_t io_checksum(const Netlist& nl, std::uint64_t seed,
                          int cycles = 8) {
  const CompiledSim sim(nl);
  std::vector<std::uint64_t> pi(sim.num_inputs());
  std::vector<std::uint64_t> ff(sim.num_dffs(), 0);
  std::vector<std::uint64_t> next(sim.num_dffs());
  std::vector<std::uint64_t> wave(sim.wave_size());
  std::vector<std::pair<std::string, CellId>> outs;
  for (const CellId id : sim.output_cells()) {
    outs.emplace_back(nl.cell(id).name, id);
  }
  std::sort(outs.begin(), outs.end());
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (int t = 0; t < cycles; ++t) {
    for (std::size_t i = 0; i < pi.size(); ++i) {
      const std::string_view name = nl.cell(sim.input_cells()[i]).name;
      pi[i] = mix(seed ^ fnv(name) ^ (0x100000001b3ull * (t + 1)));
    }
    sim.eval_word(pi, ff, wave);
    for (const auto& [name, id] : outs) {
      h ^= wave[id] ^ fnv(name);
      h *= 0x100000001b3ull;
    }
    for (std::size_t j = 0; j < next.size(); ++j) {
      next[j] = wave[sim.next_state_cells()[j]];
    }
    ff = next;
  }
  return h;
}

defense::DefenseResult apply(const char* kind, const Netlist& original,
                             std::uint64_t seed,
                             const defense::Tuning& tuning = {}) {
  defense::DefenseOptions opt;
  opt.seed = seed;
  return defense::registry().apply(kind, original, lib(), opt, tuning);
}

TEST(DefenseRegistry, ListsAllSixKinds) {
  const auto names = defense::registry().names();
  EXPECT_EQ(names.size(), 6u);
  for (const char* kind :
       {"independent", "dependent", "parametric", "xor", "latch", "const"}) {
    EXPECT_TRUE(defense::registry().contains(kind)) << kind;
  }
  EXPECT_FALSE(defense::registry().contains("antifuse"));
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(DefenseRegistry, EveryKindHasDescriptionAndKnobs) {
  for (const std::string& kind : defense::registry().names()) {
    const defense::DefenseBase& d = defense::registry().at(kind);
    EXPECT_EQ(d.kind(), kind);
    EXPECT_FALSE(d.description().empty()) << kind;
    for (const defense::TuningKnob& knob : d.knobs()) {
      EXPECT_FALSE(knob.key.empty()) << kind;
      EXPECT_FALSE(knob.help.empty()) << kind;
    }
  }
}

TEST(DefenseRegistry, UnknownKindThrowsWithKnownNames) {
  const Netlist original = bench("s641", 7);
  try {
    apply("nope", original, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("nope"), std::string::npos);
    EXPECT_NE(msg.find("latch"), std::string::npos);
    EXPECT_NE(msg.find("parametric"), std::string::npos);
  }
}

TEST(DefenseRegistry, UnknownTuningKeyThrows) {
  const Netlist original = bench("s641", 7);
  for (const std::string& kind : defense::registry().names()) {
    EXPECT_THROW(apply(kind.c_str(), original, 1, {{"warp_factor", "9"}}),
                 std::invalid_argument)
        << kind;
  }
  EXPECT_THROW(apply("xor", original, 1, {{"count", "many"}}),
               std::invalid_argument);
}

TEST(DefenseRegistry, PaperAdaptersMatchDirectFlow) {
  const Netlist original = bench("s641", 7);
  const std::pair<const char*, SelectionAlgorithm> cases[] = {
      {"independent", SelectionAlgorithm::kIndependent},
      {"dependent", SelectionAlgorithm::kDependent},
      {"parametric", SelectionAlgorithm::kParametric},
  };
  for (const auto& [kind, alg] : cases) {
    FlowOptions fo;
    fo.algorithm = alg;
    fo.selection.seed = 5;
    const FlowResult direct = run_secure_flow(original, lib(), fo);
    const defense::DefenseResult r = apply(kind, original, 5);
    EXPECT_TRUE(r.locked.structurally_equal(direct.hybrid)) << kind;
    EXPECT_EQ(r.key, direct.selection.key) << kind;
    EXPECT_EQ(r.selection.replaced, direct.selection.replaced) << kind;
    EXPECT_EQ(r.overhead.hybrid_delay_ps, direct.overhead.hybrid_delay_ps);
    EXPECT_EQ(r.overhead.hybrid_power_uw, direct.overhead.hybrid_power_uw);
    EXPECT_EQ(r.overhead.hybrid_area_um2, direct.overhead.hybrid_area_um2);
    EXPECT_EQ(r.security.n_indep.to_string(),
              direct.security.n_indep.to_string());
    EXPECT_EQ(r.security.n_bf.to_string(), direct.security.n_bf.to_string());
    EXPECT_EQ(r.cells_replaced,
              static_cast<int>(direct.selection.replaced.size()));
    EXPECT_TRUE(r.annotations.empty()) << kind;
    EXPECT_EQ(r.defense, kind);
  }
}

TEST(DefenseRegistry, PaperAdapterTuningReachesSelection) {
  const Netlist original = bench("s641", 7);
  FlowOptions fo;
  fo.algorithm = SelectionAlgorithm::kIndependent;
  fo.selection.seed = 5;
  fo.selection.indep_count = 9;
  const FlowResult direct = run_secure_flow(original, lib(), fo);
  const defense::DefenseResult r =
      apply("independent", original, 5, {{"count", "9"}});
  EXPECT_TRUE(r.locked.structurally_equal(direct.hybrid));
  EXPECT_EQ(r.key, direct.selection.key);
}

void expect_round_trip(const char* kind, const defense::Tuning& tuning) {
  const Netlist original = bench("s641", 7);
  const defense::DefenseResult r = apply(kind, original, 11, tuning);

  EXPECT_FALSE(r.key.empty()) << kind;
  EXPECT_EQ(r.key_cells, static_cast<int>(r.key.size()));
  EXPECT_GE(r.key_bits, r.key_cells);
  EXPECT_GT(r.cells_added + r.cells_replaced, 0);

  // Locked + correct key is I/O-equivalent to the original.
  const std::uint64_t want = io_checksum(original, 99);
  EXPECT_EQ(io_checksum(r.locked, 99), want) << kind;

  // The key round-trips through the foundry view. (Redaction is only a
  // structural change when some key mask is non-zero; the const defense's
  // key can legitimately be all zeros.)
  const bool any_nonzero_mask =
      std::any_of(r.key.begin(), r.key.end(),
                  [](const auto& kv) { return kv.second != 0; });
  Netlist redacted = foundry_view(r.locked);
  EXPECT_EQ(redacted.structurally_equal(r.locked), !any_nonzero_mask) << kind;
  apply_key(redacted, r.key);
  EXPECT_TRUE(redacted.structurally_equal(r.locked)) << kind;

  // A wrong key is not equivalent: complement the first key cell's mask.
  Netlist wrong = r.locked;
  const auto& [name, mask] = *r.key.begin();
  const CellId id = wrong.find(name);
  ASSERT_NE(id, kNullCell);
  LutKey bad;
  bad[name] = ~mask & full_mask(wrong.cell(id).fanin_count());
  apply_key(wrong, bad);
  EXPECT_NE(io_checksum(wrong, 99), want) << kind;
}

TEST(DefenseRoundTrip, XorKeyGates) {
  expect_round_trip("xor", {{"count", "12"}});
}

TEST(DefenseRoundTrip, LatchDecoys) {
  expect_round_trip("latch", {{"count", "6"}});
}

TEST(DefenseRoundTrip, ConstLocking) {
  expect_round_trip("const", {{"inject", "6"}});
}

TEST(DefenseRoundTrip, PaperParametric) { expect_round_trip("parametric", {}); }

TEST(DefenseRoundTrip, LatchWrongKeyIsSequentialCorruption) {
  // The plausible wrong configuration (select the decoy flip-flop, 0xC)
  // delays the net by one cycle: combinationally plausible, sequentially
  // wrong. This is the corruption mode pure-combinational reasoning misses.
  const Netlist original = bench("s641", 7);
  const defense::DefenseResult r = apply("latch", original, 11, {{"count", "6"}});
  Netlist latched = r.locked;
  LutKey all_latched;
  for (const auto& [name, mask] : r.key) {
    EXPECT_EQ(mask, 0xAull) << name;
    all_latched[name] = 0xC;
  }
  apply_key(latched, all_latched);
  EXPECT_NE(io_checksum(latched, 99), io_checksum(original, 99));
}

TEST(DefenseRegistry, AnnotationsNameRealCells) {
  const defense::DefenseResult x = apply("xor", bench("s641", 7), 3);
  EXPECT_EQ(x.annotations.key_gates.size(), x.key.size());
  for (const std::string& name : x.annotations.key_gates) {
    const CellId id = x.locked.find(name);
    ASSERT_NE(id, kNullCell);
    EXPECT_EQ(x.locked.cell(id).kind, CellKind::kLut);
  }
  const defense::DefenseResult l = apply("latch", bench("s641", 7), 3);
  EXPECT_EQ(l.annotations.decoy_latches.size(), l.key.size());
  const defense::DefenseResult c = apply("const", bench("s641", 7), 3);
  EXPECT_EQ(c.annotations.locked_constants.size(), c.key.size());
}

TEST(DefenseRegistry, OverheadReportsArePopulated) {
  const Netlist original = bench("s641", 7);
  for (const char* kind : {"xor", "latch", "const"}) {
    const defense::DefenseResult r = apply(kind, original, 4);
    EXPECT_GT(r.overhead.original_area_um2, 0) << kind;
    EXPECT_GT(r.overhead.hybrid_area_um2, r.overhead.original_area_um2)
        << kind;
    EXPECT_GT(r.overhead.hybrid_delay_ps, 0) << kind;
    EXPECT_EQ(r.security.missing_gates, r.key_cells) << kind;
    EXPECT_FALSE(r.detail.empty()) << kind;
    EXPECT_GE(r.elapsed_s, 0) << kind;
  }
}

TEST(DefenseRegistry, DeterministicAcrossRepeatApplication) {
  const Netlist original = bench("s820", 3);
  for (const char* kind : {"xor", "latch", "const"}) {
    const defense::DefenseResult a = apply(kind, original, 21);
    const defense::DefenseResult b = apply(kind, original, 21);
    EXPECT_TRUE(a.locked.structurally_equal(b.locked)) << kind;
    EXPECT_EQ(a.key, b.key) << kind;
    const defense::DefenseResult c = apply(kind, original, 22);
    // The seed must matter: a different seed picks different sites.
    EXPECT_FALSE(a.locked.structurally_equal(c.locked)) << kind;
  }
}

TEST(DefenseAttack, SatRecoversWorkingKeyFromEachDefense) {
  const Netlist original = bench("s641", 7);
  const std::uint64_t want = io_checksum(original, 123);
  const std::pair<const char*, defense::Tuning> cases[] = {
      {"xor", {{"count", "8"}}},
      {"latch", {{"count", "4"}}},
      {"const", {{"inject", "4"}}},
  };
  for (const auto& [kind, tuning] : cases) {
    const defense::DefenseResult r = apply(kind, original, 11, tuning);
    const Netlist view = foundry_view(r.locked);
    const attack::UnifiedResult u =
        attack::registry().run("sat", view, r.locked);
    EXPECT_TRUE(u.success()) << kind;
    // The recovered key must *work* (SAT may land on any I/O-equivalent
    // configuration, so compare behaviour, not masks).
    Netlist recovered = view;
    apply_key(recovered, u.key);
    EXPECT_EQ(io_checksum(recovered, 123), want) << kind;
  }
}

}  // namespace
}  // namespace stt
