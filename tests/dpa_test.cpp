#include <gtest/gtest.h>

#include "attack/dpa.hpp"
#include "synth/generator.hpp"

namespace stt {
namespace {

const TechLibrary& lib() {
  static const TechLibrary kLib = TechLibrary::cmos90_stt();
  return kLib;
}

// Test circuit: the secret cell sits in the middle of surrounding logic so
// its contribution is a fraction of the total trace.
Netlist testbed(CellKind secret_kind, bool as_lut, CellId* target) {
  Netlist nl("dpa");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId d = nl.add_input("d");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId secret = nl.add_gate(secret_kind, "secret", {g1, c});
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {secret, d});
  const CellId g3 = nl.add_gate(CellKind::kXor, "g3", {g2, a});
  const CellId ff = nl.add_dff("ff", g3);
  const CellId g4 = nl.add_gate(CellKind::kAnd, "g4", {ff, b});
  nl.mark_output(g4);
  nl.mark_output(g2);
  nl.finalize();
  if (as_lut) nl.replace_with_lut(secret);
  *target = secret;
  return nl;
}

TEST(PowerTrace, DeterministicAndShaped) {
  CellId target;
  const Netlist nl = testbed(CellKind::kXor, false, &target);
  TraceOptions opt;
  opt.cycles = 64;
  const auto t1 = simulate_power_trace(nl, lib(), opt);
  const auto t2 = simulate_power_trace(nl, lib(), opt);
  EXPECT_EQ(t1.trace_fj, t2.trace_fj);
  EXPECT_EQ(t1.trace_fj.size(), 64u);
  EXPECT_EQ(t1.pi_bits.size(), 64u);
  EXPECT_EQ(t1.state_bits[0].size(), nl.dffs().size());
  // Energy is strictly positive from leakage and activity.
  for (const double e : t1.trace_fj) EXPECT_GT(e, 0.0);
}

TEST(PowerTrace, NoiseChangesSamplesOnly) {
  CellId target;
  const Netlist nl = testbed(CellKind::kXor, false, &target);
  TraceOptions clean;
  clean.cycles = 64;
  TraceOptions noisy = clean;
  noisy.noise_sigma_fj = 1.0;
  const auto a = simulate_power_trace(nl, lib(), clean);
  const auto b = simulate_power_trace(nl, lib(), noisy);
  EXPECT_EQ(a.pi_bits, b.pi_bits);  // same stimulus stream
  EXPECT_NE(a.trace_fj, b.trace_fj);
}

TEST(Dpa, CmosGateLeaksItsFunction) {
  CellId target;
  const Netlist nl = testbed(CellKind::kXor, false, &target);
  TraceOptions opt;
  opt.cycles = 512;
  const auto trace = simulate_power_trace(nl, lib(), opt);
  const auto result = run_dpa_attack(
      nl, target, gate_truth_mask(CellKind::kXor, 2), trace);
  // Output-toggle CPA resolves the function up to complement.
  EXPECT_TRUE(result.identified_up_to_complement);
  EXPECT_GT(result.margin(), 0.02);
  EXPECT_GT(result.best_correlation, 0.1);
}

TEST(Dpa, SttLutDoesNotLeakConfiguration) {
  CellId target;
  const Netlist nl = testbed(CellKind::kXor, true, &target);
  TraceOptions opt;
  opt.cycles = 512;
  const auto trace = simulate_power_trace(nl, lib(), opt);
  const auto result = run_dpa_attack(
      nl, target, gate_truth_mask(CellKind::kXor, 2), trace);
  // The LUT read energy is identical for every configuration: the
  // discrimination margin collapses versus the CMOS case.
  CellId cmos_target;
  const Netlist cmos = testbed(CellKind::kXor, false, &cmos_target);
  const auto cmos_trace = simulate_power_trace(cmos, lib(), opt);
  const auto cmos_result = run_dpa_attack(
      cmos, cmos_target, gate_truth_mask(CellKind::kXor, 2), cmos_trace);
  EXPECT_LT(result.margin(), cmos_result.margin());
  EXPECT_LT(result.margin(), 0.05);
}

TEST(Dpa, NoiseDegradesCmosAttackGracefully) {
  CellId target;
  const Netlist nl = testbed(CellKind::kNor, false, &target);
  TraceOptions clean;
  clean.cycles = 512;
  TraceOptions noisy = clean;
  noisy.noise_sigma_fj = 50.0;  // swamp the per-gate energies
  const auto clean_result = run_dpa_attack(
      nl, target, gate_truth_mask(CellKind::kNor, 2),
      simulate_power_trace(nl, lib(), clean));
  const auto noisy_result = run_dpa_attack(
      nl, target, gate_truth_mask(CellKind::kNor, 2),
      simulate_power_trace(nl, lib(), noisy));
  EXPECT_GE(clean_result.best_correlation, noisy_result.best_correlation);
}

TEST(Dpa, RankingCoversAllCandidates) {
  CellId target;
  const Netlist nl = testbed(CellKind::kAnd, false, &target);
  TraceOptions opt;
  opt.cycles = 128;
  const auto trace = simulate_power_trace(nl, lib(), opt);
  const auto result = run_dpa_attack(
      nl, target, gate_truth_mask(CellKind::kAnd, 2), trace);
  EXPECT_EQ(result.ranking.size(), 6u);
  // Sorted descending.
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_GE(result.ranking[i - 1].second, result.ranking[i].second);
  }
}

TEST(Dpa, ShortTraceRejected) {
  CellId target;
  const Netlist nl = testbed(CellKind::kAnd, false, &target);
  PowerTraceResult tiny;
  tiny.trace_fj = {1.0, 2.0};
  EXPECT_THROW(run_dpa_attack(nl, target, 0, tiny), std::invalid_argument);
}

}  // namespace
}  // namespace stt
