// Simulation-engine throughput: the perf trajectory of the compiled batch
// simulator against the seed's single-pattern oracle path.
//
// Four modes apply the *same* scan patterns to the same locked circuit:
//  * single         — one ScanOracle::query (bool in/out) per pattern, the
//                     seed-era attack-loop driving style (1/64 word lanes);
//  * word           — ScanOracle::query_word, 64 packed patterns per call;
//  * batch          — ScanOracle::query_batch, W words per call through the
//                     blocked wave layout;
//  * batch_threaded — the same batch fanned out across the runtime
//                     ThreadPool.
//
// Every mode folds the oracle responses into one checksum, which must be
// identical across modes (bit-identical results are a hard requirement of
// the engine), and emits JSON to BENCH_sim_perf.json (override with --out)
// so CI can archive the trajectory. `--smoke` runs a seconds-scale
// configuration for CI; the default exercises the largest bundled
// benchmark (s38584, ~20k gates).
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/oracle.hpp"
#include "core/selection.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

struct ModeResult {
  std::string name;
  double seconds = 0;
  std::uint64_t patterns = 0;
  std::uint64_t checksum = 0;
};

double rate(const ModeResult& m) {
  return m.seconds > 0 ? static_cast<double>(m.patterns) / m.seconds : 0.0;
}

// Fold a response word-set into the running checksum so a single flipped
// output bit anywhere changes the digest.
std::uint64_t fold(std::uint64_t acc, std::span<const std::uint64_t> words) {
  for (const std::uint64_t w : words) {
    acc = (acc ^ w) * 0x9e3779b97f4a7c15ull;
    acc ^= acc >> 29;
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("--benchmark",
                  "ISCAS'89 profile name (default s38584; s641 with --smoke)");
  args.add_option("--patterns", "patterns per mode (rounded up to words)");
  args.add_option("--batch-words", "words per query_batch call", "256");
  args.add_option("--jobs", "threads for batch_threaded (0 = hardware)", "0");
  args.add_option("--out", "output JSON path", "BENCH_sim_perf.json");
  args.add_flag("--smoke", "seconds-scale CI configuration (s641, few words)");
  try {
    args.parse({argv + 1, argv + argc});
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench_sim_perf: %s\n%s", e.what(),
                 args.help().c_str());
    return 2;
  }

  const bool smoke = args.flag("--smoke");
  const std::string bench_name =
      args.get_or("--benchmark", smoke ? "s641" : "s38584");
  const auto profile = find_profile(bench_name);
  if (!profile) {
    std::fprintf(stderr, "bench_sim_perf: unknown benchmark %s\n",
                 bench_name.c_str());
    return 2;
  }
  const std::size_t n_words =
      args.has("--patterns")
          ? (static_cast<std::size_t>(args.get_int("--patterns")) + 63) / 64
          : (smoke ? 32 : 256);
  const std::size_t n_patterns = n_words * 64;
  const std::size_t batch_words =
      std::min<std::size_t>(args.get_int("--batch-words"), n_words);

  // Build the evaluated chip: generated replica, locked with the paper's
  // parametric selection so the instruction stream contains LUTs.
  Netlist chip = generate_circuit(*profile, kSeed);
  {
    const TechLibrary lib = TechLibrary::cmos90_stt();
    GateSelector selector(lib);
    SelectionOptions opt;
    opt.seed = kSeed;
    (void)selector.run(chip, SelectionAlgorithm::kIndependent, opt);
  }
  const std::size_t n_gates = chip.stats().gates;
  const std::size_t n_in = chip.inputs().size() + chip.dffs().size();
  const std::size_t n_out = chip.outputs().size() + chip.dffs().size();

  // One shared stimulus set in blocked layout: bit position i, word w at
  // stim[i * n_words + w].
  Rng rng(kSeed ^ 0xbadc0ffeull);
  std::vector<std::uint64_t> stim(n_in * n_words);
  for (auto& w : stim) w = rng();

  std::vector<ModeResult> modes;

  {  // single: the seed-era driving style, one bool pattern per query.
    ScanOracle oracle(chip);
    ModeResult m{"single", 0, n_patterns, 0};
    std::vector<bool> pattern(n_in);
    std::vector<std::uint64_t> packed(n_out, 0);
    Timer timer;
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t o = 0; o < n_out; ++o) packed[o] = 0;
      for (int b = 0; b < 64; ++b) {
        for (std::size_t i = 0; i < n_in; ++i) {
          pattern[i] = (stim[i * n_words + w] >> b) & 1ull;
        }
        const auto response = oracle.query(pattern);
        for (std::size_t o = 0; o < n_out; ++o) {
          if (response[o]) packed[o] |= (1ull << b);
        }
      }
      m.checksum = fold(m.checksum, packed);
    }
    m.seconds = timer.seconds();
    modes.push_back(m);
  }

  {  // word: 64 packed patterns per oracle call.
    ScanOracle oracle(chip);
    ModeResult m{"word", 0, n_patterns, 0};
    std::vector<std::uint64_t> in(n_in), out(n_out);
    Timer timer;
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_in; ++i) in[i] = stim[i * n_words + w];
      oracle.query_word(in, out);
      m.checksum = fold(m.checksum, out);
    }
    m.seconds = timer.seconds();
    modes.push_back(m);
  }

  const auto run_batch = [&](const std::string& name, ParallelFor* par) {
    ScanOracle oracle(chip);
    ModeResult m{name, 0, n_patterns, 0};
    std::vector<std::uint64_t> in(n_in * batch_words);
    std::vector<std::uint64_t> out(n_out * batch_words);
    std::vector<std::uint64_t> packed(n_out, 0);
    Timer timer;
    for (std::size_t w0 = 0; w0 < n_words; w0 += batch_words) {
      const std::size_t bw = std::min(batch_words, n_words - w0);
      for (std::size_t i = 0; i < n_in; ++i) {
        for (std::size_t w = 0; w < bw; ++w) {
          in[i * bw + w] = stim[i * n_words + w0 + w];
        }
      }
      oracle.query_batch(bw, std::span(in.data(), n_in * bw),
                         std::span(out.data(), n_out * bw), par);
      // Checksum word-by-word so every mode folds identical sequences.
      for (std::size_t w = 0; w < bw; ++w) {
        for (std::size_t o = 0; o < n_out; ++o) packed[o] = out[o * bw + w];
        m.checksum = fold(m.checksum, packed);
      }
    }
    m.seconds = timer.seconds();
    modes.push_back(m);
  };

  run_batch("batch", nullptr);

  const unsigned jobs = static_cast<unsigned>(args.get_int("--jobs"));
  ThreadPool pool(jobs);
  ThreadPoolParallelFor par(pool);
  run_batch("batch_threaded", &par);

  for (const ModeResult& m : modes) {
    if (m.checksum != modes.front().checksum) {
      std::fprintf(stderr,
                   "bench_sim_perf: checksum mismatch in mode %s "
                   "(%016llx vs %016llx) — batched results are NOT "
                   "bit-identical\n",
                   m.name.c_str(),
                   static_cast<unsigned long long>(m.checksum),
                   static_cast<unsigned long long>(modes.front().checksum));
      return 1;
    }
  }

  const double single_rate = rate(modes.front());
  std::string json = "{\n";
  json += "  \"benchmark\": \"" + profile->name + "\",\n";
  json += "  \"gates\": " + std::to_string(n_gates) + ",\n";
  json += "  \"patterns\": " + std::to_string(n_patterns) + ",\n";
  json += "  \"batch_words\": " + std::to_string(batch_words) + ",\n";
  json += "  \"threads\": " + std::to_string(pool.size()) + ",\n";
  json += "  \"checksum\": \"" + std::to_string(modes.front().checksum) +
          "\",\n";
  json += "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"seconds\": %.6f, "
                  "\"patterns_per_sec\": %.1f, \"gates_per_sec\": %.3e, "
                  "\"speedup_vs_single\": %.2f}%s\n",
                  m.name.c_str(), m.seconds, rate(m),
                  rate(m) * static_cast<double>(n_gates),
                  single_rate > 0 ? rate(m) / single_rate : 0.0,
                  i + 1 < modes.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  const std::string out_path = args.get("--out");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench_sim_perf: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  // Acceptance gate: the batched path must beat the seed-era single-pattern
  // oracle by at least 5x (in practice ~64x from lane packing alone).
  const double batch_rate = rate(modes[2]);
  if (single_rate > 0 && batch_rate < 5.0 * single_rate) {
    std::fprintf(stderr,
                 "bench_sim_perf: batch speedup %.2fx below the 5x gate\n",
                 batch_rate / single_rate);
    return 1;
  }
  return 0;
}
