// Simulation-engine throughput across SIMD ISAs: the perf trajectory of
// the compiled batch simulator against the seed's single-pattern oracle
// path and the seed's 64-bit word engine.
//
// Two baseline rows plus a per-ISA matrix, all applying the *same* scan
// patterns to the same locked circuit:
//  * single          — one ScanOracle::query (bool in/out) per pattern,
//                      the seed-era attack-loop driving style;
//  * rows with isa "scalar64" — the scalar kernel pinned to the seed's
//                      fixed 8-word block schedule: the 64-bit engine
//                      exactly as it shipped before the SIMD lanes PR,
//                      and the denominator of the speedup columns;
//  * rows with isa "scalar"/"avx2"/"avx512" — the lane kernels under the
//                      automatic block schedule (serial calls stream each
//                      wave row end to end; threaded calls split the
//                      batch by worker count), one row per granularity:
//        word           ScanOracle::query_word, 64 packed patterns/call;
//        batch          ScanOracle::query_batch, W words per call;
//        batch_threaded query_batch fanned out across the ThreadPool.
//
// Every row folds the oracle responses into one checksum that must be
// identical across all modes and ISAs — bit-exactness across lane widths
// is a hard requirement of the engine, checked here on real responses.
// Timed rows run one untimed warm-up pass, then repeat until a minimum
// wall time so the JSON reports steady-state throughput, not page faults.
// JSON goes to BENCH_sim_perf.json (--out) for CI to archive.
//
// Acceptance gates (--smoke relaxes nothing; the gates scale by ISA):
//  * batch (widest ISA) >= 5x single — the seed-era gate;
//  * batch_threaded (widest ISA) >= 4x scalar64 batch_threaded when the
//    widest ISA is avx512, >= 2x when it is avx2; no SIMD gate when only
//    the scalar kernel is available.
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/oracle.hpp"
#include "core/selection.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

struct Row {
  std::string mode;
  std::string isa;      // "", "scalar64", "scalar", "avx2", "avx512"
  double seconds = 0;   // summed over timed repetitions
  std::uint64_t patterns = 0;  // summed over timed repetitions
  std::uint64_t checksum = 0;
  int reps = 0;
};

double rate(const Row& m) {
  return m.seconds > 0 ? static_cast<double>(m.patterns) / m.seconds : 0.0;
}

// Fold a response word-set into the running checksum so a single flipped
// output bit anywhere changes the digest.
std::uint64_t fold(std::uint64_t acc, std::span<const std::uint64_t> words) {
  for (const std::uint64_t w : words) {
    acc = (acc ^ w) * 0x9e3779b97f4a7c15ull;
    acc ^= acc >> 29;
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("--benchmark",
                  "ISCAS'89 profile name (default s38584; s641 with --smoke)");
  args.add_option("--patterns", "patterns per repetition (rounded to words)");
  args.add_option("--batch-words", "words per query_batch call", "256");
  args.add_option("--jobs", "threads for batch_threaded (0 = hardware)", "0");
  args.add_option("--min-seconds",
                  "minimum timed wall per row (single runs once)", "0.3");
  args.add_option("--out", "output JSON path", "BENCH_sim_perf.json");
  args.add_flag("--smoke", "seconds-scale CI configuration (s641, few words)");
  try {
    args.parse({argv + 1, argv + argc});
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench_sim_perf: %s\n%s", e.what(),
                 args.help().c_str());
    return 2;
  }

  const bool smoke = args.flag("--smoke");
  const std::string bench_name =
      args.get_or("--benchmark", smoke ? "s641" : "s38584");
  const auto profile = find_profile(bench_name);
  if (!profile) {
    std::fprintf(stderr, "bench_sim_perf: unknown benchmark %s\n",
                 bench_name.c_str());
    return 2;
  }
  const std::size_t n_words =
      args.has("--patterns")
          ? (static_cast<std::size_t>(args.get_int("--patterns")) + 63) / 64
          : (smoke ? 32 : 256);
  const std::size_t n_patterns = n_words * 64;
  const std::size_t batch_words =
      std::min<std::size_t>(args.get_int("--batch-words"), n_words);
  const double min_seconds = args.get_double("--min-seconds");

  // Build the evaluated chip: generated replica, locked with the paper's
  // parametric selection so the instruction stream contains LUTs.
  Netlist chip = generate_circuit(*profile, kSeed);
  {
    const TechLibrary lib = TechLibrary::cmos90_stt();
    GateSelector selector(lib);
    SelectionOptions opt;
    opt.seed = kSeed;
    (void)selector.run(chip, SelectionAlgorithm::kIndependent, opt);
  }
  const std::size_t n_gates = chip.stats().gates;
  const std::size_t n_in = chip.inputs().size() + chip.dffs().size();
  const std::size_t n_out = chip.outputs().size() + chip.dffs().size();

  // One shared stimulus set in blocked layout: bit position i, word w at
  // stim[i * n_words + w].
  Rng rng(kSeed ^ 0xbadc0ffeull);
  std::vector<std::uint64_t> stim(n_in * n_words);
  for (auto& w : stim) w = rng();

  std::vector<Row> rows;

  {  // single: the seed-era driving style, one bool pattern per query.
    ScanOracle oracle(chip);
    Row m{"single", "", 0, n_patterns, 0, 1};
    std::vector<bool> pattern(n_in);
    std::vector<std::uint64_t> packed(n_out, 0);
    Timer timer;
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t o = 0; o < n_out; ++o) packed[o] = 0;
      for (int b = 0; b < 64; ++b) {
        for (std::size_t i = 0; i < n_in; ++i) {
          pattern[i] = (stim[i * n_words + w] >> b) & 1ull;
        }
        const auto response = oracle.query(pattern);
        for (std::size_t o = 0; o < n_out; ++o) {
          if (response[o]) packed[o] |= (1ull << b);
        }
      }
      m.checksum = fold(m.checksum, packed);
    }
    m.seconds = timer.seconds();
    rows.push_back(m);
  }

  // Timed repetition driver: one untimed warm-up pass (faults pages,
  // warms caches, and folds the row checksum — the steady state is what
  // attack loops see), then repeat until min_seconds of wall time. Timed
  // passes skip the checksum transpose: responses are deterministic, and
  // attack loops consume response rows in place rather than re-packing
  // them per word.
  const auto repeat = [&](Row row, const auto& pass) {
    pass(row, /*collect_checksum=*/true);  // warm-up
    row.patterns = 0;
    Timer timer;
    do {
      pass(row, /*collect_checksum=*/false);
      row.patterns += n_patterns;
      ++row.reps;
      row.seconds = timer.seconds();
    } while (row.seconds < min_seconds);
    rows.push_back(row);
  };

  // One oracle and one set of staging buffers per *row*, reused across the
  // warm-up pass and every timed repetition — steady-state throughput, not
  // allocator and page-fault noise, is what the attack loops experience.
  const auto run_word_row = [&](const std::string& isa_label) {
    ScanOracle oracle(chip);
    std::vector<std::uint64_t> in(n_in), out(n_out);
    repeat({"word", isa_label, 0, 0, 0, 0}, [&](Row& m, bool collect) {
      std::uint64_t acc = 0;
      for (std::size_t w = 0; w < n_words; ++w) {
        for (std::size_t i = 0; i < n_in; ++i) in[i] = stim[i * n_words + w];
        oracle.query_word(in, out);
        if (collect) acc = fold(acc, out);
      }
      if (collect) m.checksum = acc;
    });
  };

  const auto run_batch_row = [&](const std::string& mode,
                                 const std::string& isa_label,
                                 ParallelFor* par) {
    ScanOracle oracle(chip);
    std::vector<std::uint64_t> in(n_in * batch_words);
    std::vector<std::uint64_t> out(n_out * batch_words);
    std::vector<std::uint64_t> packed(n_out, 0);
    repeat({mode, isa_label, 0, 0, 0, 0}, [&](Row& m, bool collect) {
      std::uint64_t acc = 0;
      for (std::size_t w0 = 0; w0 < n_words; w0 += batch_words) {
        const std::size_t bw = std::min(batch_words, n_words - w0);
        for (std::size_t i = 0; i < n_in; ++i) {
          for (std::size_t w = 0; w < bw; ++w) {
            in[i * bw + w] = stim[i * n_words + w0 + w];
          }
        }
        oracle.query_batch(bw, std::span(in.data(), n_in * bw),
                           std::span(out.data(), n_out * bw), par);
        if (!collect) continue;
        // Checksum word-by-word so every row folds identical sequences.
        for (std::size_t w = 0; w < bw; ++w) {
          for (std::size_t o = 0; o < n_out; ++o) packed[o] = out[o * bw + w];
          acc = fold(acc, packed);
        }
      }
      if (collect) m.checksum = acc;
    });
  };

  const unsigned jobs = static_cast<unsigned>(args.get_int("--jobs"));
  ThreadPool pool(jobs);
  ThreadPoolParallelFor par(pool);

  // The ISA matrix: the scalar64 baseline (seed engine: scalar kernel,
  // fixed 8-word blocks), then every kernel this build+host supports
  // under the automatic schedule.
  struct IsaRun {
    std::string label;
    SimIsa isa;
    std::size_t block;  // 0 = automatic policy
  };
  std::vector<IsaRun> isa_runs{
      {"scalar64", SimIsa::kScalar, CompiledSim::kWordsPerBlock}};
  for (const SimIsa isa : {SimIsa::kScalar, SimIsa::kAvx2, SimIsa::kAvx512}) {
    if (sim_isa_supported(isa)) isa_runs.push_back({sim_isa_name(isa), isa, 0});
  }
  const std::string widest = isa_runs.back().label;

  const std::size_t saved_block = CompiledSim::batch_block_override();
  for (const IsaRun& run : isa_runs) {
    ScopedSimIsa force(run.isa);
    CompiledSim::set_batch_block_override(run.block);
    run_word_row(run.label);
    run_batch_row("batch", run.label, nullptr);
    run_batch_row("batch_threaded", run.label, &par);
    CompiledSim::set_batch_block_override(saved_block);
  }

  for (const Row& m : rows) {
    if (m.checksum != rows.front().checksum) {
      std::fprintf(stderr,
                   "bench_sim_perf: checksum mismatch in %s[%s] "
                   "(%016llx vs %016llx) — results are NOT bit-identical "
                   "across modes/ISAs\n",
                   m.mode.c_str(), m.isa.c_str(),
                   static_cast<unsigned long long>(m.checksum),
                   static_cast<unsigned long long>(rows.front().checksum));
      return 1;
    }
  }

  const auto find_row = [&](const std::string& mode,
                            const std::string& isa) -> const Row* {
    for (const Row& m : rows) {
      if (m.mode == mode && m.isa == isa) return &m;
    }
    return nullptr;
  };
  const double single_rate = rate(rows.front());
  const Row* base_threaded = find_row("batch_threaded", "scalar64");

  std::string json = "{\n";
  json += "  \"benchmark\": \"" + profile->name + "\",\n";
  json += "  \"gates\": " + std::to_string(n_gates) + ",\n";
  json += "  \"patterns\": " + std::to_string(n_patterns) + ",\n";
  json += "  \"batch_words\": " + std::to_string(batch_words) + ",\n";
  json += "  \"threads\": " + std::to_string(pool.size()) + ",\n";
  json += "  \"widest_isa\": \"" + widest + "\",\n";
  json += "  \"checksum\": \"" + std::to_string(rows.front().checksum) +
          "\",\n";
  json += "  \"modes\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& m = rows[i];
    const Row* base = find_row(m.mode, "scalar64");
    const double vs64 =
        base != nullptr && rate(*base) > 0 ? rate(m) / rate(*base) : 0.0;
    char buf[320];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"isa\": \"%s\", \"reps\": %d, "
                  "\"seconds\": %.6f, \"patterns_per_sec\": %.1f, "
                  "\"gates_per_sec\": %.3e, \"speedup_vs_single\": %.2f, "
                  "\"speedup_vs_scalar64\": %.2f}%s\n",
                  m.mode.c_str(), m.isa.c_str(), m.reps, m.seconds, rate(m),
                  rate(m) * static_cast<double>(n_gates),
                  single_rate > 0 ? rate(m) / single_rate : 0.0, vs64,
                  i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  const std::string out_path = args.get("--out");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench_sim_perf: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  // Gate 1 (seed-era): the widest batched path must beat the seed's
  // single-pattern oracle by at least 5x.
  const Row* widest_batch = find_row("batch", widest);
  if (widest_batch == nullptr ||
      (single_rate > 0 && rate(*widest_batch) < 5.0 * single_rate)) {
    std::fprintf(stderr,
                 "bench_sim_perf: batch[%s] speedup %.2fx below the 5x gate\n",
                 widest.c_str(),
                 widest_batch != nullptr && single_rate > 0
                     ? rate(*widest_batch) / single_rate
                     : 0.0);
    return 1;
  }
  // Gate 2 (SIMD lanes): the widest batch_threaded row must beat the
  // 64-bit seed engine by an ISA-scaled factor. Applies to the default
  // (large-circuit) configuration only: sub-1k-gate smoke circuits are
  // instruction-decode-bound, where lane width buys little by design —
  // smoke runs still enforce the cross-ISA checksum identity above.
  const double simd_gate =
      widest == "avx512" ? 4.0 : widest == "avx2" ? 2.0 : 0.0;
  if (smoke && simd_gate > 0) {
    std::fprintf(stderr,
                 "bench_sim_perf: --smoke skips the %.0fx SIMD gate "
                 "(decode-bound small circuit); run the default "
                 "configuration to enforce it\n",
                 simd_gate);
  }
  if (simd_gate > 0 && !smoke) {
    const Row* widest_threaded = find_row("batch_threaded", widest);
    const double base_rate =
        base_threaded != nullptr ? rate(*base_threaded) : 0.0;
    const double got = widest_threaded != nullptr && base_rate > 0
                           ? rate(*widest_threaded) / base_rate
                           : 0.0;
    if (got < simd_gate) {
      std::fprintf(stderr,
                   "bench_sim_perf: batch_threaded[%s] is %.2fx the 64-bit "
                   "engine, below the %.0fx SIMD gate\n",
                   widest.c_str(), got, simd_gate);
      return 1;
    }
  }
  return 0;
}
