// Reproduces the paper's Table I: percentage of performance, power and area
// overhead (plus the number of inserted STT LUTs) after applying the
// independent, dependent and parametric-aware selection algorithms to the
// twelve ISCAS'89 benchmarks.
//
// Circuits are seeded statistical replicas matched to the published
// benchmark sizes (see DESIGN.md, substitutions). Expect the paper's
// *trends*: dependent selection has the largest performance/power impact;
// all overheads shrink as circuit size grows; parametric-aware selection
// stays within its timing margin by construction.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flow.hpp"
#include "synth/generator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;  // DAC'16 conference date

void print_table1() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"Circuit", "Perf% Ind", "Perf% Dep", "Perf% Par",
                   "Pwr% Ind", "Pwr% Dep", "Pwr% Par", "Area% Ind",
                   "Area% Dep", "Area% Par", "#STT Ind", "#STT Dep",
                   "#STT Par", "size"});

  Accumulator perf[3], power[3], area[3], count[3], sizes;
  for (const CircuitProfile& profile : iscas89_profiles()) {
    const Netlist original = generate_circuit(profile, kSeed);
    FlowResult results[3];
    const SelectionAlgorithm algs[3] = {SelectionAlgorithm::kIndependent,
                                        SelectionAlgorithm::kDependent,
                                        SelectionAlgorithm::kParametric};
    for (int a = 0; a < 3; ++a) {
      FlowOptions opt;
      opt.algorithm = algs[a];
      opt.selection.seed = kSeed + a;
      results[a] = run_secure_flow(original, lib, opt);
      perf[a].add(results[a].overhead.perf_degradation_pct());
      power[a].add(results[a].overhead.power_overhead_pct());
      area[a].add(results[a].overhead.area_overhead_pct());
      count[a].add(results[a].overhead.num_stt_luts);
    }
    sizes.add(static_cast<double>(profile.n_gates));

    auto pct = [](double v) { return strformat("%.2f", v); };
    table.add_row({profile.name,
                   pct(results[0].overhead.perf_degradation_pct()),
                   pct(results[1].overhead.perf_degradation_pct()),
                   pct(results[2].overhead.perf_degradation_pct()),
                   pct(results[0].overhead.power_overhead_pct()),
                   pct(results[1].overhead.power_overhead_pct()),
                   pct(results[2].overhead.power_overhead_pct()),
                   pct(results[0].overhead.area_overhead_pct()),
                   pct(results[1].overhead.area_overhead_pct()),
                   pct(results[2].overhead.area_overhead_pct()),
                   std::to_string(results[0].overhead.num_stt_luts),
                   std::to_string(results[1].overhead.num_stt_luts),
                   std::to_string(results[2].overhead.num_stt_luts),
                   std::to_string(profile.n_gates)});
  }
  auto pct = [](double v) { return strformat("%.2f", v); };
  table.add_row({"Average", pct(perf[0].mean()), pct(perf[1].mean()),
                 pct(perf[2].mean()), pct(power[0].mean()),
                 pct(power[1].mean()), pct(power[2].mean()),
                 pct(area[0].mean()), pct(area[1].mean()),
                 pct(area[2].mean()), pct(count[0].mean()),
                 pct(count[1].mean()), pct(count[2].mean()),
                 pct(sizes.mean())});

  std::printf(
      "Table I — Percentage of power, performance and area overhead after\n"
      "introducing STT-based LUT units (Ind = independent, Dep = dependent,\n"
      "Par = parametric-aware dependent selection).\n\n%s\n",
      table.render().c_str());
  if (FILE* csv = std::fopen("table1.csv", "w")) {
    std::fputs(table.to_csv().c_str(), csv);
    std::fclose(csv);
    std::printf("(machine-readable copy written to table1.csv)\n\n");
  }
}

// google-benchmark: full-flow cost on a small, medium and large benchmark.
void bm_secure_flow(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile& profile = iscas89_profiles()[state.range(0)];
  const Netlist original = generate_circuit(profile, kSeed);
  FlowOptions opt;
  opt.algorithm = SelectionAlgorithm::kParametric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_secure_flow(original, lib, opt));
  }
  state.SetLabel(profile.name);
}

BENCHMARK(bm_secure_flow)->Arg(0)->Arg(4)->Arg(7)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
