// Reproduces the paper's Table I: percentage of performance, power and area
// overhead (plus the number of inserted STT LUTs) after applying the
// independent, dependent and parametric-aware selection algorithms to the
// twelve ISCAS'89 benchmarks.
//
// Circuits are seeded statistical replicas matched to the published
// benchmark sizes (see DESIGN.md, substitutions). Expect the paper's
// *trends*: dependent selection has the largest performance/power impact;
// all overheads shrink as circuit size grows; parametric-aware selection
// stays within its timing margin by construction.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/flow.hpp"
#include "runtime/job.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;  // DAC'16 conference date

// Worker threads for the table regeneration; STT_BENCH_JOBS overrides
// (set to 1 to reproduce the old serial behaviour — values are identical
// either way, only wall time changes).
unsigned bench_jobs() {
  if (const char* env = std::getenv("STT_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return 0;  // ThreadPool: hardware concurrency
}

void print_table1() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"Circuit", "Perf% Ind", "Perf% Dep", "Perf% Par",
                   "Pwr% Ind", "Pwr% Dep", "Pwr% Par", "Area% Ind",
                   "Area% Dep", "Area% Par", "#STT Ind", "#STT Dep",
                   "#STT Par", "size"});

  // The whole benchmark x algorithm grid runs on the campaign engine's
  // job graph: one circuit-generation job per benchmark, three dependent
  // secure-flow jobs per circuit. Results land in grid-indexed slots, so
  // the table below is byte-identical to the historical serial loop.
  const auto& profiles = iscas89_profiles();
  const SelectionAlgorithm algs[3] = {SelectionAlgorithm::kIndependent,
                                      SelectionAlgorithm::kDependent,
                                      SelectionAlgorithm::kParametric};
  std::vector<std::shared_ptr<const Netlist>> circuits(profiles.size());
  std::vector<std::array<FlowResult, 3>> results(profiles.size());

  Timer wall;
  ThreadPool pool(bench_jobs());
  JobGraph graph;
  for (std::size_t b = 0; b < profiles.size(); ++b) {
    const JobId gen = graph.add("gen/" + profiles[b].name,
                                [&circuits, &profiles, b](JobContext&) {
                                  circuits[b] = std::make_shared<const Netlist>(
                                      generate_circuit(profiles[b], kSeed));
                                });
    for (int a = 0; a < 3; ++a) {
      graph.add(
          "flow/" + profiles[b].name + "/" + algorithm_name(algs[a]),
          [&circuits, &results, &lib, &algs, b, a](JobContext&) {
            FlowOptions opt;
            opt.algorithm = algs[a];
            opt.selection.seed = kSeed + static_cast<std::uint64_t>(a);
            results[b][a] = run_secure_flow(*circuits[b], lib, opt);
          },
          {gen});
    }
  }
  graph.run(pool);
  std::fprintf(stderr, "table1 grid: %zu jobs on %u threads in %.1fs\n",
               graph.size(), pool.size(), wall.seconds());

  Accumulator perf[3], power[3], area[3], count[3], sizes;
  for (std::size_t b = 0; b < profiles.size(); ++b) {
    const CircuitProfile& profile = profiles[b];
    const auto& row = results[b];
    for (int a = 0; a < 3; ++a) {
      perf[a].add(row[a].overhead.perf_degradation_pct());
      power[a].add(row[a].overhead.power_overhead_pct());
      area[a].add(row[a].overhead.area_overhead_pct());
      count[a].add(row[a].overhead.num_stt_luts);
    }
    sizes.add(static_cast<double>(profile.n_gates));

    auto pct = [](double v) { return strformat("%.2f", v); };
    table.add_row({profile.name,
                   pct(row[0].overhead.perf_degradation_pct()),
                   pct(row[1].overhead.perf_degradation_pct()),
                   pct(row[2].overhead.perf_degradation_pct()),
                   pct(row[0].overhead.power_overhead_pct()),
                   pct(row[1].overhead.power_overhead_pct()),
                   pct(row[2].overhead.power_overhead_pct()),
                   pct(row[0].overhead.area_overhead_pct()),
                   pct(row[1].overhead.area_overhead_pct()),
                   pct(row[2].overhead.area_overhead_pct()),
                   std::to_string(row[0].overhead.num_stt_luts),
                   std::to_string(row[1].overhead.num_stt_luts),
                   std::to_string(row[2].overhead.num_stt_luts),
                   std::to_string(profile.n_gates)});
  }
  auto pct = [](double v) { return strformat("%.2f", v); };
  table.add_row({"Average", pct(perf[0].mean()), pct(perf[1].mean()),
                 pct(perf[2].mean()), pct(power[0].mean()),
                 pct(power[1].mean()), pct(power[2].mean()),
                 pct(area[0].mean()), pct(area[1].mean()),
                 pct(area[2].mean()), pct(count[0].mean()),
                 pct(count[1].mean()), pct(count[2].mean()),
                 pct(sizes.mean())});

  std::printf(
      "Table I — Percentage of power, performance and area overhead after\n"
      "introducing STT-based LUT units (Ind = independent, Dep = dependent,\n"
      "Par = parametric-aware dependent selection).\n\n%s\n",
      table.render().c_str());
  if (FILE* csv = std::fopen("table1.csv", "w")) {
    std::fputs(table.to_csv().c_str(), csv);
    std::fclose(csv);
    std::printf("(machine-readable copy written to table1.csv)\n\n");
  }
}

// google-benchmark: full-flow cost on a small, medium and large benchmark.
void bm_secure_flow(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile& profile = iscas89_profiles()[state.range(0)];
  const Netlist original = generate_circuit(profile, kSeed);
  FlowOptions opt;
  opt.algorithm = SelectionAlgorithm::kParametric;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_secure_flow(original, lib, opt));
  }
  state.SetLabel(profile.name);
}

BENCHMARK(bm_secure_flow)->Arg(0)->Arg(4)->Arg(7)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
