// Side-channel experiment (ours): makes the paper's Section II claim —
// "STT-based LUT power consumption is almost insensitive to its input
// changes … more robust against power-based side channel attacks" —
// executable.
//
// A secret 2-input cell is embedded in surrounding logic; the attacker
// records per-cycle power traces and runs correlation power analysis over
// the six standard candidate functions. We sweep measurement noise and
// compare the unprotected CMOS implementation against the STT-LUT
// implementation of the *same* function in the *same* circuit.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/dpa.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

Netlist make_testbed(bool as_lut, CellId* target) {
  Netlist nl("sc");
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId d = nl.add_input("d");
  const CellId g1 = nl.add_gate(CellKind::kNand, "g1", {a, b});
  const CellId secret = nl.add_gate(CellKind::kXor, "secret", {g1, c});
  const CellId g2 = nl.add_gate(CellKind::kOr, "g2", {secret, d});
  const CellId g3 = nl.add_gate(CellKind::kXor, "g3", {g2, a});
  const CellId ff = nl.add_dff("ff", g3);
  const CellId g4 = nl.add_gate(CellKind::kAnd, "g4", {ff, b});
  nl.mark_output(g4);
  nl.mark_output(g2);
  nl.finalize();
  if (as_lut) nl.replace_with_lut(secret);
  *target = secret;
  return nl;
}

void print_dpa_sweep() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"implementation", "noise fJ", "traces", "CPA margin",
                   "best corr", "class found"});
  for (const double noise : {0.0, 2.0, 8.0, 32.0}) {
    for (const bool as_lut : {false, true}) {
      CellId target;
      const Netlist nl = make_testbed(as_lut, &target);
      TraceOptions topt;
      topt.cycles = 2048;
      topt.noise_sigma_fj = noise;
      const auto trace = simulate_power_trace(nl, lib, topt);
      const auto dpa = run_dpa_attack(
          nl, target, gate_truth_mask(CellKind::kXor, 2), trace);
      table.add_row({as_lut ? "STT LUT" : "CMOS gate",
                     strformat("%.0f", noise), std::to_string(topt.cycles),
                     strformat("%.4f", dpa.margin()),
                     strformat("%.4f", dpa.best_correlation),
                     dpa.identified_up_to_complement ? "yes" : "no"});
    }
  }
  std::printf(
      "Correlation power analysis against one secret 2-input cell (CPA\n"
      "resolves a function up to complement; 'class found' = the correct\n"
      "{f, !f} class ranked first). The CMOS cell's data-dependent toggle\n"
      "energy leaks its function; the STT LUT's content-independent read\n"
      "energy leaves the attacker at chance — the paper's Section II\n"
      "side-channel claim, reproduced.\n\n%s\n",
      table.render().c_str());
}

void bm_power_trace(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist nl = generate_circuit(*find_profile("s953"), 1);
  TraceOptions opt;
  opt.cycles = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_power_trace(nl, lib, opt));
  }
  state.SetLabel(strformat("%d cycles", static_cast<int>(state.range(0))));
}

BENCHMARK(bm_power_trace)
    ->Arg(256)
    ->Arg(1024)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_dpa_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
