// Validation beyond the paper: execute real attacks against the three
// selection algorithms and confirm the paper's security *ordering* with
// working adversaries instead of closed-form estimates.
//
//  * sensitization (testing) attack  — the Eq. (1) adversary;
//  * oracle-guided SAT attack        — the strongest scan-access adversary;
//  * brute-force candidate search    — the Eq. (3) adversary.
//
// Expected shape: independent selection falls to everything; dependent
// selection defeats sensitization (rows stay unresolved) while SAT still
// wins with scan access; attack effort (patterns / iterations /
// combinations) grows with LUT count, supporting the paper's scan-lock
// assumption discussion in Section IV-A.3.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/brute_force.hpp"
#include "attack/encode.hpp"
#include "attack/guided_sens.hpp"
#include "attack/ml_attack.hpp"
#include "attack/sat_attack.hpp"
#include "attack/sensitization.hpp"
#include "core/camouflage.hpp"
#include "core/security.hpp"
#include "core/selection.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 424242;

struct Workload {
  const char* label;
  CircuitProfile profile;
};

const Workload kWorkloads[] = {
    {"tiny-60", {"tiny60", 8, 6, 5, 60, 6}},
    {"small-150", {"small150", 10, 8, 8, 150, 8}},
    {"mid-400", {"mid400", 12, 10, 12, 400, 10}},
};

void print_validation() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  TextTable table({"Circuit", "Algorithm", "#LUT", "Sens rows%",
                   "Guided rows%", "Guided patt", "SAT ok", "SAT iters",
                   "BF ok", "BF combos", "ML acc"});

  for (const Workload& w : kWorkloads) {
    const Netlist original = generate_circuit(w.profile, kSeed);
    for (const auto alg :
         {SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
          SelectionAlgorithm::kParametric}) {
      Netlist hybrid = original;
      SelectionOptions opt;
      opt.seed = kSeed + static_cast<int>(alg);
      // Security-demanding parametric config (the size-based default would
      // place only 2-3 LUTs on circuits this small).
      opt.para_num_paths = 6;
      const auto sel = selector.run(hybrid, alg, opt);
      const Netlist attacker_view = foundry_view(hybrid);

      ScanOracle o1(original);
      SensitizationOptions sopt;
      sopt.query_budget = 30000;
      const auto sens = run_sensitization_attack(attacker_view, o1, sopt);

      ScanOracle o_guided(original);
      const auto guided = run_guided_sensitization(attacker_view, o_guided);

      ScanOracle o_ml(original);
      MlAttackOptions mlopt;
      mlopt.work_budget = 8000;
      const auto ml = run_ml_attack(attacker_view, o_ml, mlopt);

      SatAttackOptions satopt;
      satopt.time_limit_s = 20.0;
      satopt.max_iterations = 400;
      const auto sat = run_sat_attack(attacker_view, original, satopt);

      ScanOracle o2(original);
      BruteForceOptions bfopt;
      bfopt.work_budget = 500'000;
      const auto bf = run_brute_force(attacker_view, o2, bfopt);

      table.add_row(
          {w.label, std::string(algorithm_name(alg)),
           std::to_string(sel.replaced.size()),
           strformat("%.0f", sens.rows_total
                                 ? 100.0 * sens.rows_resolved / sens.rows_total
                                 : 100.0),
           strformat("%.0f",
                     guided.rows_total
                         ? 100.0 * guided.rows_resolved / guided.rows_total
                         : 100.0),
           std::to_string(guided.queries),
           sat.success() ? "yes" : (sat.timed_out() ? "timeout" : "budget"),
           std::to_string(sat.iterations), bf.success() ? "yes" : "no",
           std::to_string(bf.combinations_tried),
           strformat("%.3f", ml.final_accuracy)});
    }
  }
  std::printf(
      "Attack validation (ours) — executable adversaries vs the three\n"
      "selection algorithms. 'Sens rows%%' = truth-table rows the testing\n"
      "attack resolved; the paper's ordering requires it to collapse for\n"
      "dependent/parametric locks while independent locks fall quickly.\n\n"
      "%s\n",
      table.render().c_str());
}

void print_camouflage_comparison() {
  // The paper's Section IV-A.3 contrast: camouflaged cells expose only 3
  // candidate functions, STT LUTs 6+ per gate (and the full function space
  // once complex packing widens them).
  TextTable table({"defense", "#cells", "BF search space", "BF ok",
                   "BF combos", "log10 N_bf"});
  const CircuitProfile profile{"camo-cmp", 10, 8, 8, 250, 9};
  const Netlist original = generate_circuit(profile, kSeed);

  Netlist camo = original;
  CamouflageOptions copt;
  copt.seed = kSeed;
  copt.count = 10;
  (void)apply_camouflage(camo, copt);
  const auto camo_set = camouflage_candidate_masks();
  ScanOracle oc(camo);
  BruteForceOptions bfc;
  bfc.candidates_2in = &camo_set;
  bfc.work_budget = 500'000;
  const auto r_camo = run_brute_force(foundry_view(camo), oc, bfc);
  const auto camo_sec = security_report(camo, camouflage_similarity_model());
  table.add_row({"camouflage {NAND,NOR,XNOR}", "10",
                 r_camo.search_space.to_string(),
                 r_camo.success() ? "yes" : "no",
                 std::to_string(r_camo.combinations_tried),
                 strformat("%.1f", camo_sec.n_bf.log10())});

  Netlist stt = original;
  Netlist ref = original;
  const auto chosen = apply_camouflage(ref, copt);  // same cells
  for (const CellId id : chosen.camouflaged) stt.replace_with_lut(id);
  ScanOracle os(stt);
  BruteForceOptions bfs;
  bfs.work_budget = 500'000;
  const auto r_stt = run_brute_force(foundry_view(stt), os, bfs);
  const auto stt_sec = security_report(stt, SimilarityModel::computed());
  table.add_row({"STT LUT (same cells)", "10", r_stt.search_space.to_string(),
                 r_stt.success() ? "yes" : "no",
                 std::to_string(r_stt.combinations_tried),
                 strformat("%.1f", stt_sec.n_bf.log10())});

  std::printf(
      "Camouflaging baseline vs STT-LUT hybrid on the same 10 cells:\n\n"
      "%s\n",
      table.render().c_str());
}

void bm_sat_attack_iterations(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  const Netlist original = generate_circuit(kWorkloads[0].profile, kSeed);
  Netlist hybrid = original;
  SelectionOptions opt;
  opt.indep_count = static_cast<int>(state.range(0));
  (void)selector.run(hybrid, SelectionAlgorithm::kIndependent, opt);
  const Netlist view = foundry_view(hybrid);
  for (auto _ : state) {
    const auto result = run_sat_attack(view, original);
    benchmark::DoNotOptimize(result);
    state.counters["iterations"] = result.iterations;
  }
  state.SetLabel(strformat("%d LUTs", static_cast<int>(state.range(0))));
}

BENCHMARK(bm_sat_attack_iterations)->Arg(2)->Arg(5)->Arg(10)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_validation();
  print_camouflage_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
