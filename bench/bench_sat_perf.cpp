// Oracle-guided attack-engine throughput: the perf trajectory of the
// cone-pruned incremental DIP encoder, the simulation-guided warm-up, and
// the solver portfolio against the seed's naive re-encoding loop.
//
// Four modes run the *same* attack (same locked circuit, same oracle):
//  * naive      — legacy engine: two full symbolic copies re-encoded per
//                 DIP (the PR 3 baseline, cone_pruning=false);
//  * pruned     — cone-pruned constant-folded DIP encoding, no warm-up;
//  * pruned_sim — cone pruning plus the word-parallel simulation warm-up;
//  * portfolio  — pruned_sim with a 3-member solver portfolio racing the
//                 UNSAT proofs on the runtime ThreadPool.
//
// Every mode must recover a functionally correct key: each recovered key
// is applied to the attacker's view and the resulting chip is driven with
// one shared random word batch; the folded response checksums must be
// identical across modes and equal to the reference chip's. On top of the
// checksum, pruned_sim and portfolio must report identical iterations,
// queries, and key (the engine's determinism contract). JSON goes to
// BENCH_sat_perf.json (override with --out) so CI can archive the
// trajectory; the in-binary gate requires pruned_sim to beat naive by
// --min-speedup (default 5x, the acceptance bar, on the full-size default
// benchmark; 2x on the seconds-scale --smoke configuration).
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "attack/oracle.hpp"
#include "attack/sat_attack.hpp"
#include "core/hybrid.hpp"
#include "core/selection.hpp"
#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "tech/tech_library.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

struct ModeResult {
  std::string name;
  SatAttackResult attack;
  std::uint64_t checksum = 0;
};

std::uint64_t fold(std::uint64_t acc, std::span<const std::uint64_t> words) {
  for (const std::uint64_t w : words) {
    acc = (acc ^ w) * 0x9e3779b97f4a7c15ull;
    acc ^= acc >> 29;
  }
  return acc;
}

// Functional digest of a configured netlist: responses to a fixed random
// word batch, folded. Two chips agree on the digest iff they agree on
// every one of the 64*words probed patterns.
std::uint64_t functional_checksum(const Netlist& chip, std::size_t words) {
  ScanOracle oracle(chip);
  const std::size_t n_in = oracle.num_inputs();
  const std::size_t n_out = oracle.num_outputs();
  Rng rng(kSeed ^ 0xc0de5eedull);
  std::vector<std::uint64_t> in(n_in * words);
  for (auto& w : in) w = rng();
  std::vector<std::uint64_t> out(n_out * words);
  oracle.query_batch(words, in, out, nullptr);
  return fold(0, out);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("--benchmark",
                  "ISCAS'89 profile name (default s13207; s953 with --smoke)");
  args.add_option("--algorithm", "independent | dependent | parametric",
                  "dependent");
  args.add_option("--time-limit", "per-mode wall-clock cap in seconds", "300");
  args.add_option("--min-speedup",
                  "gate: pruned_sim vs naive (default 5; 2 with --smoke)");
  args.add_option("--jobs", "threads for the portfolio mode (0 = hardware)",
                  "0");
  args.add_option("--out", "output JSON path", "BENCH_sat_perf.json");
  args.add_flag("--smoke", "seconds-scale CI configuration");
  try {
    args.parse({argv + 1, argv + argc});
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench_sat_perf: %s\n%s", e.what(),
                 args.help().c_str());
    return 2;
  }

  const bool smoke = args.flag("--smoke");
  const std::string bench_name =
      args.get_or("--benchmark", smoke ? "s953" : "s13207");
  const auto profile = find_profile(bench_name);
  if (!profile) {
    std::fprintf(stderr, "bench_sat_perf: unknown benchmark %s\n",
                 bench_name.c_str());
    return 2;
  }
  const std::string alg_name = args.get("--algorithm");
  SelectionAlgorithm alg;
  if (alg_name == "independent") {
    alg = SelectionAlgorithm::kIndependent;
  } else if (alg_name == "dependent") {
    alg = SelectionAlgorithm::kDependent;
  } else if (alg_name == "parametric") {
    alg = SelectionAlgorithm::kParametric;
  } else {
    std::fprintf(stderr, "bench_sat_perf: unknown algorithm %s\n",
                 alg_name.c_str());
    return 2;
  }
  const double time_limit = args.get_double("--time-limit");
  // Small smoke circuits spend proportionally less time in the per-DIP
  // encoding that pruning removes, so the smoke bar sits lower.
  const double min_speedup =
      std::stod(args.get_or("--min-speedup", smoke ? "2" : "5"));

  // The defended chip: generated replica locked with the requested paper
  // algorithm; the attacker sees the redacted foundry view.
  Netlist chip = generate_circuit(*profile, kSeed);
  {
    const TechLibrary lib = TechLibrary::cmos90_stt();
    GateSelector selector(lib);
    SelectionOptions opt;
    opt.seed = kSeed;
    (void)selector.run(chip, alg, opt);
  }
  const Netlist view = foundry_view(chip);
  const std::size_t n_luts = chip.stats().luts;
  const std::size_t n_key_bits = key_bits(chip);
  const std::size_t checksum_words = 16;
  const std::uint64_t reference = functional_checksum(chip, checksum_words);

  const unsigned jobs = static_cast<unsigned>(args.get_int("--jobs"));
  ThreadPool pool(jobs);
  ThreadPoolParallelFor par(pool);

  std::vector<ModeResult> modes;
  const auto run_mode = [&](const std::string& name,
                            const SatAttackOptions& opt) {
    ScanOracle oracle(chip);
    ModeResult m{name, run_sat_attack(view, oracle, opt), 0};
    if (m.attack.success()) {
      Netlist recovered = view;
      apply_key(recovered, m.attack.key);
      m.checksum = functional_checksum(recovered, checksum_words);
    }
    std::fprintf(stderr,
                 "  %-10s %s: %d DIPs, %llu queries, %lld conflicts, "
                 "%.1f clauses/iter, %.3fs\n",
                 name.c_str(),
                 m.attack.success()
                     ? "ok"
                     : (m.attack.timed_out() ? "TIMEOUT" : "BUDGET"),
                 m.attack.iterations,
                 static_cast<unsigned long long>(m.attack.queries),
                 static_cast<long long>(m.attack.conflicts),
                 m.attack.stats.cnf_clauses_per_iter, m.attack.elapsed_s);
    modes.push_back(m);
  };

  SatAttackOptions base;
  base.time_limit_s = time_limit;
  base.max_iterations = 100000;

  SatAttackOptions naive = base;
  naive.cone_pruning = false;
  run_mode("naive", naive);

  SatAttackOptions pruned = base;
  pruned.warmup_words = 0;
  run_mode("pruned", pruned);

  SatAttackOptions pruned_sim = base;
  run_mode("pruned_sim", pruned_sim);

  SatAttackOptions portfolio = pruned_sim;
  portfolio.portfolio = 3;
  portfolio.parallel = &par;
  run_mode("portfolio", portfolio);

  for (const ModeResult& m : modes) {
    if (!m.attack.success()) {
      std::fprintf(stderr, "bench_sat_perf: mode %s failed to recover a key\n",
                   m.name.c_str());
      return 1;
    }
    if (m.checksum != reference) {
      std::fprintf(stderr,
                   "bench_sat_perf: mode %s recovered a functionally WRONG "
                   "key (checksum %016llx vs %016llx)\n",
                   m.name.c_str(), static_cast<unsigned long long>(m.checksum),
                   static_cast<unsigned long long>(reference));
      return 1;
    }
  }

  // Determinism contract: the portfolio must not change the attack's
  // observable trajectory, only its wall-clock.
  const SatAttackResult& solo = modes[2].attack;
  const SatAttackResult& team = modes[3].attack;
  if (solo.iterations != team.iterations ||
      solo.queries != team.queries || solo.key != team.key) {
    std::fprintf(stderr,
                 "bench_sat_perf: portfolio changed the result "
                 "(%d/%d DIPs, %llu/%llu queries) — determinism broken\n",
                 solo.iterations, team.iterations,
                 static_cast<unsigned long long>(solo.queries),
                 static_cast<unsigned long long>(team.queries));
    return 1;
  }

  const double naive_s = modes[0].attack.elapsed_s;
  std::string json = "{\n";
  json += "  \"benchmark\": \"" + profile->name + "\",\n";
  json += "  \"algorithm\": \"" + alg_name + "\",\n";
  json += "  \"luts\": " + std::to_string(n_luts) + ",\n";
  json += "  \"key_bits\": " + std::to_string(n_key_bits) + ",\n";
  json += "  \"threads\": " + std::to_string(pool.size()) + ",\n";
  json += "  \"checksum\": \"" + std::to_string(reference) + "\",\n";
  json += "  \"modes\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"seconds\": %.6f, \"iterations\": %d, "
        "\"queries\": %llu, \"conflicts\": %lld, \"decisions\": %lld, "
        "\"propagations\": %lld, \"learned\": %lld, \"peak_clauses\": %lld, "
        "\"cnf_initial\": %lld, \"cnf_dip\": %lld, "
        "\"cnf_per_iter\": %.2f, \"key_rows_folded\": %d, "
        "\"speedup_vs_naive\": %.2f}%s\n",
        m.name.c_str(), m.attack.elapsed_s, m.attack.iterations,
        static_cast<unsigned long long>(m.attack.queries),
        static_cast<long long>(m.attack.conflicts),
        static_cast<long long>(m.attack.stats.decisions),
        static_cast<long long>(m.attack.stats.propagations),
        static_cast<long long>(m.attack.stats.learned),
        static_cast<long long>(m.attack.stats.peak_clauses),
        static_cast<long long>(m.attack.stats.cnf_initial_clauses),
        static_cast<long long>(m.attack.stats.cnf_dip_clauses),
        m.attack.stats.cnf_clauses_per_iter, m.attack.stats.key_rows_resolved,
        m.attack.elapsed_s > 0 ? naive_s / m.attack.elapsed_s : 0.0,
        i + 1 < modes.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  const std::string out_path = args.get("--out");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench_sat_perf: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  // Acceptance gate: cone pruning + simulation warm-up must beat the naive
  // re-encoding loop by the issue's bar on wall-clock.
  const double sim_s = modes[2].attack.elapsed_s;
  if (sim_s > 0 && naive_s / sim_s < min_speedup) {
    std::fprintf(stderr,
                 "bench_sat_perf: pruned_sim speedup %.2fx below the %.1fx "
                 "gate\n",
                 naive_s / sim_s, min_speedup);
    return 1;
  }
  return 0;
}
