// Reproduces the paper's Fig. 1: comparison of circuit-style alternatives —
// STT-based (MTJ) LUT vs static CMOS — for NAND2/NAND4/NOR2/NOR4/XOR2/XOR4,
// all metrics normalized to the static CMOS implementation.
//
// The table is produced by the analytical device model in src/tech at the
// predictive-32nm-class calibration (the paper's Fig. 1 technology). The
// google-benchmark section additionally times the model evaluation itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "tech/device_model.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

struct GateSpec {
  const char* label;
  CellKind kind;
  int fanin;
};

constexpr GateSpec kGates[] = {
    {"NAND2", CellKind::kNand, 2}, {"NAND4", CellKind::kNand, 4},
    {"NOR2", CellKind::kNor, 2},   {"NOR4", CellKind::kNor, 4},
    {"XOR2", CellKind::kXor, 2},   {"XOR4", CellKind::kXor, 4},
};

void print_fig1() {
  const TechLibrary lib = TechLibrary::predictive32_stt();
  TextTable table({"Gate", "Metric", "MTJ-based LUT", "Static CMOS"});
  for (const GateSpec& g : kGates) {
    const DeviceComparison cmp = compare_lut_vs_cmos(lib, g.kind, g.fanin);
    table.add_row({g.label, "Delay", strformat("%.2f", cmp.delay_ratio), "1"});
    table.add_row({g.label, "Active Power(a=10%)",
                   strformat("%.2f", cmp.active_power_ratio_a10), "1"});
    table.add_row({g.label, "Active Power(a=30%)",
                   strformat("%.2f", cmp.active_power_ratio_a30), "1"});
    table.add_row({g.label, "Standby Power",
                   strformat("%.2f", cmp.standby_power_ratio), "1"});
    table.add_row({g.label, "Energy per Switching",
                   strformat("%.2f", cmp.energy_per_switch_ratio), "1"});
  }
  std::printf(
      "Fig. 1 — Comparison of circuit style alternatives (alpha: output "
      "switching activity),\nnormalized to static CMOS, model calibration "
      "'%s'.\n\n%s\n",
      lib.name().c_str(), table.render().c_str());
}

void bm_device_model(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::predictive32_stt();
  const GateSpec& g = kGates[state.range(0)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(compare_lut_vs_cmos(lib, g.kind, g.fanin));
  }
  state.SetLabel(g.label);
}

BENCHMARK(bm_device_model)->DenseRange(0, 5)->Iterations(1000);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
