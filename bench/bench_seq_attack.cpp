// Scan-locked (no-scan) attack study: the executable version of the D
// factor in Eqs. (1)-(3).
//
// Section IV-A.3: oracle-guided attacks "significantly account on
// accessibility to scan architecture"; practice locks the scan chain. This
// bench quantifies what the attacker loses: the sequential SAT attack must
// unroll F time frames, and a LUT buried behind d flip-flops is invisible
// until F > d. We sweep the burial depth and the unrolling horizon on a
// pipeline circuit and report recovery status and costs, plus the scan
// attack as the baseline.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "attack/sat_attack.hpp"
#include "attack/seq_attack.hpp"
#include "core/hybrid.hpp"
#include "sim/simulator.hpp"
#include "synth/generator.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

// A circuit whose single locked gate sits `depth` flip-flops before the
// only primary output, with enough side logic to be non-trivial.
Netlist buried_lock(int depth, Netlist* hybrid_out) {
  Netlist nl("buried" + std::to_string(depth));
  const CellId a = nl.add_input("a");
  const CellId b = nl.add_input("b");
  const CellId c = nl.add_input("c");
  const CellId g = nl.add_gate(CellKind::kXor, "locked", {a, b});
  const CellId mix = nl.add_gate(CellKind::kNand, "mix", {g, c});
  CellId cursor = mix;
  for (int i = 0; i < depth; ++i) {
    const CellId ff = nl.add_dff("ff" + std::to_string(i), cursor);
    cursor = nl.add_gate(CellKind::kXor, "st" + std::to_string(i), {ff, c});
  }
  const CellId out = nl.add_gate(CellKind::kOr, "out", {cursor, a});
  nl.mark_output(out);
  nl.finalize();

  *hybrid_out = nl;
  hybrid_out->replace_with_lut(nl.find("locked"));
  return nl;
}

bool key_correct_sequentially(const Netlist& view, const LutKey& key,
                              const Netlist& original) {
  Netlist recovered = view;
  apply_key(recovered, key);
  SequentialSimulator sa(recovered);
  SequentialSimulator sb(original);
  sa.reset(false);
  sb.reset(false);
  Rng rng(99);
  std::vector<std::uint64_t> pi(original.inputs().size());
  for (int t = 0; t < 64; ++t) {
    for (auto& w : pi) w = rng();
    if (sa.step(pi) != sb.step(pi)) return false;
  }
  return true;
}

void print_depth_sweep() {
  TextTable table({"burial depth d", "frames F", "DIS found", "key correct",
                   "oracle cycles", "attack s"});
  for (const int depth : {1, 2, 4, 6}) {
    for (const int frames : {depth - 1, depth + 1, depth + 4}) {
      if (frames <= 0) continue;
      Netlist hybrid;
      const Netlist original = buried_lock(depth, &hybrid);
      const Netlist view = foundry_view(hybrid);
      SeqAttackOptions opt;
      opt.frames = frames;
      opt.time_limit_s = 30;
      SequenceOracle oracle(original);
      const auto r = run_sequential_sat_attack(view, oracle, opt);
      const bool correct =
          r.success() && key_correct_sequentially(view, r.key, original);
      table.add_row({std::to_string(depth), std::to_string(frames),
                     std::to_string(r.iterations),
                     r.success() ? (correct ? "yes" : "NO (horizon too short)")
                               : "-",
                     std::to_string(r.queries),
                     strformat("%.2f", r.elapsed_s)});
    }
  }
  std::printf(
      "No-scan sequential SAT attack vs burial depth: with F <= d the\n"
      "attack finds no distinguishing sequence (0 DIS) and its vacuous key\n"
      "is wrong on longer runs; F > d recovers the key. Locked scan chains\n"
      "therefore multiply attack cost by the unrolling factor — the D term\n"
      "of Eqs. (1)-(3).\n\n%s\n",
      table.render().c_str());
}

void print_scan_vs_noscan() {
  TextTable table({"circuit", "mode", "ok", "iters/DIS", "oracle cost",
                   "seconds"});
  const CircuitProfile profile{"sv", 8, 6, 6, 120, 8};
  const Netlist original = generate_circuit(profile, 21);
  Netlist hybrid = original;
  for (const CellId id : hybrid.logic_cells()) {
    if (hybrid.stats().luts >= 3) break;
    if (is_replaceable_gate(hybrid.cell(id).kind) &&
        hybrid.cell(id).fanin_count() >= 2) {
      hybrid.replace_with_lut(id);
    }
  }
  const Netlist view = foundry_view(hybrid);

  const auto scan = run_sat_attack(view, original);
  table.add_row({"sv-120", "scan (comb)",
                 scan.success() && key_correct_sequentially(view, scan.key,
                                                          original)
                     ? "yes"
                     : "no",
                 std::to_string(scan.iterations),
                 std::to_string(scan.queries),
                 strformat("%.2f", scan.elapsed_s)});

  SeqAttackOptions opt;
  opt.frames = 6;
  opt.time_limit_s = 60;
  const auto noscan = run_sequential_sat_attack(view, original, opt);
  table.add_row({"sv-120", "no scan (6 frames)",
                 noscan.success() && key_correct_sequentially(
                                       view, noscan.key, original)
                     ? "yes"
                     : "no",
                 std::to_string(noscan.iterations),
                 std::to_string(noscan.queries),
                 strformat("%.2f", noscan.elapsed_s)});
  std::printf("Scan vs no-scan attack cost on the same lock:\n\n%s\n",
              table.render().c_str());
}

void bm_seq_attack_frames(benchmark::State& state) {
  Netlist hybrid;
  const Netlist original = buried_lock(2, &hybrid);
  const Netlist view = foundry_view(hybrid);
  SeqAttackOptions opt;
  opt.frames = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SequenceOracle oracle(original);
    benchmark::DoNotOptimize(run_sequential_sat_attack(view, oracle, opt));
  }
  state.SetLabel(strformat("%d frames", static_cast<int>(state.range(0))));
}

BENCHMARK(bm_seq_attack_frames)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_depth_sweep();
  print_scan_vs_noscan();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
