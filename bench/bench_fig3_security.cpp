// Reproduces the paper's Fig. 3: the number of possible required test
// clocks to determine the functionality of the missing gates, per ISCAS'89
// benchmark, under the attack matched to each selection algorithm:
// Eq. (1) for independent, Eq. (2) for dependent, Eq. (3) (brute force /
// machine learning) for parametric-aware selection.
//
// The paper reports e.g. ~6.07E+219 clocks for s38584 under parametric
// selection with 166 LUTs; the reproduction must land in the same
// "astronomical" regime (hundreds of orders of magnitude beyond feasible),
// with parametric >> dependent >> independent on every circuit.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flow.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

void print_fig3() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"Circuit", "N_indep (Eq.1)", "N_dep (Eq.2)",
                   "N_bf (Eq.3)", "log10 N_bf", "years@1G/s (param)"});

  for (const CircuitProfile& profile : iscas89_profiles()) {
    const Netlist original = generate_circuit(profile, kSeed);
    BigNum values[3];
    const SelectionAlgorithm algs[3] = {SelectionAlgorithm::kIndependent,
                                        SelectionAlgorithm::kDependent,
                                        SelectionAlgorithm::kParametric};
    for (int a = 0; a < 3; ++a) {
      FlowOptions opt;
      opt.algorithm = algs[a];
      opt.selection.seed = kSeed + a;
      const FlowResult flow = run_secure_flow(original, lib, opt);
      values[a] = required_clocks(flow.security, algs[a]);
    }
    table.add_row({profile.name, values[0].to_string(), values[1].to_string(),
                   values[2].to_string(),
                   strformat("%.1f", values[2].log10()),
                   attack_years(values[2]).to_string()});
  }
  std::printf(
      "Fig. 3 — The number of possible required test clocks to determine\n"
      "the functionality of missing gates (columns matched to the attack\n"
      "each selection algorithm faces; log scale in the paper's figure).\n\n"
      "%s\n"
      "The paper's headline: s38584 with 166 parametric LUTs needs ~6.07E+219\n"
      "test clocks — >1000 years at one billion patterns per second. The\n"
      "reproduction shows the same explosive growth with circuit size (the\n"
      "2^I support term dominates). Small circuits with only a handful of\n"
      "parametric LUTs fall below the 1000-year bar here; note the paper's\n"
      "own Table I counts (e.g. one LUT on s832) cannot clear it under\n"
      "Eq. 3 either — a designer raises para_num_paths to buy margin.\n\n",
      table.render().c_str());
  if (FILE* csv = std::fopen("fig3.csv", "w")) {
    std::fputs(table.to_csv().c_str(), csv);
    std::fclose(csv);
    std::printf("(machine-readable copy written to fig3.csv)\n\n");
  }
}

void bm_security_report(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile& profile = iscas89_profiles()[state.range(0)];
  const Netlist original = generate_circuit(profile, kSeed);
  FlowOptions opt;
  opt.algorithm = SelectionAlgorithm::kParametric;
  const FlowResult flow = run_secure_flow(original, lib, opt);
  const SimilarityModel model = SimilarityModel::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(security_report(flow.hybrid, model));
  }
  state.SetLabel(profile.name);
}

BENCHMARK(bm_security_report)->Arg(0)->Arg(7)->Arg(11)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
