// Ablation study (ours, called out in DESIGN.md): how the design choices
// inside parametric-aware selection trade overhead against security.
//
//  1. USL closure on/off — the paper argues the closure is what makes
//     partial truth tables impossible; measure its cost (extra LUTs, power)
//     and its benefit (accessible inputs I, hence Eq. 3 exponent).
//  2. Path-pool sample rate — the paper samples 2% of components; sweep it.
//  3. Per-path gate fraction — the paper's "predetermined number" of gates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/flow.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 777;

void print_usl_ablation() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"Circuit", "USL", "#LUT", "I (acc.inputs)", "log10 N_bf",
                   "Pwr%", "Area%", "Perf%"});
  for (const char* name : {"s953", "s1488", "s5378a"}) {
    const Netlist original = generate_circuit(*find_profile(name), kSeed);
    for (const bool usl : {true, false}) {
      FlowOptions opt;
      opt.algorithm = SelectionAlgorithm::kParametric;
      opt.selection.seed = kSeed;
      opt.selection.usl_closure = usl;
      const FlowResult flow = run_secure_flow(original, lib, opt);
      table.add_row({name, usl ? "on" : "off",
                     std::to_string(flow.selection.replaced.size()),
                     std::to_string(flow.security.accessible_inputs),
                     flow.security.n_bf.is_zero()
                         ? "n/a"
                         : strformat("%.1f", flow.security.n_bf.log10()),
                     strformat("%.2f", flow.overhead.power_overhead_pct()),
                     strformat("%.2f", flow.overhead.area_overhead_pct()),
                     strformat("%.2f", flow.overhead.perf_degradation_pct())});
    }
  }
  std::printf("Ablation 1 — USL neighbour closure on/off.\n\n%s\n",
              table.render().c_str());
}

void print_sample_rate_ablation() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"sample%", "paths", "#LUT", "log10 N_bf", "Pwr%"});
  const Netlist original = generate_circuit(*find_profile("s5378a"), kSeed);
  for (const double rate : {0.005, 0.01, 0.02, 0.05, 0.10}) {
    FlowOptions opt;
    opt.algorithm = SelectionAlgorithm::kParametric;
    opt.selection.seed = kSeed;
    opt.selection.pool.sample_fraction = rate;
    const FlowResult flow = run_secure_flow(original, lib, opt);
    table.add_row({strformat("%.1f", rate * 100),
                   std::to_string(flow.selection.paths_considered),
                   std::to_string(flow.selection.replaced.size()),
                   strformat("%.1f", flow.security.n_bf.log10()),
                   strformat("%.2f", flow.overhead.power_overhead_pct())});
  }
  std::printf(
      "Ablation 2 — path-pool sample rate (the paper uses 2%%), s5378a.\n\n"
      "%s\n",
      table.render().c_str());
}

void print_fraction_ablation() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  TextTable table({"gate fraction", "#LUT", "retries", "log10 N_bf",
                   "Perf%", "Pwr%"});
  const Netlist original = generate_circuit(*find_profile("s5378a"), kSeed);
  for (const double fraction : {0.1, 0.25, 0.35, 0.5, 0.75}) {
    FlowOptions opt;
    opt.algorithm = SelectionAlgorithm::kParametric;
    opt.selection.seed = kSeed;
    opt.selection.para_gate_fraction = fraction;
    const FlowResult flow = run_secure_flow(original, lib, opt);
    table.add_row({strformat("%.2f", fraction),
                   std::to_string(flow.selection.replaced.size()),
                   std::to_string(flow.selection.timing_retries),
                   strformat("%.1f", flow.security.n_bf.log10()),
                   strformat("%.2f", flow.overhead.perf_degradation_pct()),
                   strformat("%.2f", flow.overhead.power_overhead_pct())});
  }
  std::printf(
      "Ablation 3 — per-path selection fraction (L1 draw size), s5378a.\n\n"
      "%s\n",
      table.render().c_str());
}

void bm_parametric_selection_sample_rate(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  const Netlist original = generate_circuit(*find_profile("s5378a"), kSeed);
  SelectionOptions opt;
  opt.pool.sample_fraction = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    Netlist work = original;
    benchmark::DoNotOptimize(
        selector.run(work, SelectionAlgorithm::kParametric, opt));
  }
  state.SetLabel(strformat("sample %.1f%%", state.range(0) / 10.0));
}

BENCHMARK(bm_parametric_selection_sample_rate)
    ->Arg(5)
    ->Arg(20)
    ->Arg(100)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_usl_ablation();
  print_sample_rate_ablation();
  print_fraction_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
