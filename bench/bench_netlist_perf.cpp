// Netlist-core load/lint throughput: the perf trajectory of the interned,
// pool-backed netlist core and the zero-copy .bench reader against the
// seed-era core (std::string cell names, unordered_map name index, one
// heap vector per fan-in/fanout list, allocating line parser).
//
// Both paths consume the *same* generated .bench text — an ITC'99-class
// LUT-heavy replica (default b19_x4, ~1M logic cells) — and are phase-timed:
//  * parse    — text -> finalized netlist (includes fanout rebuild, full
//               invariant check and the embedded cycle check);
//  * finalize — re-running finalize() on the built netlist (fanout rebuild
//               + invariant re-check, the hot step of in-place editing);
//  * topo     — one combinational topological order;
//  * lint     — the structural lint layer (STR/HYB rules + SCC cycle scan);
//  * lower    — CompiledSim instruction lowering (current path only; the
//               seed replica core is a bench-local type the simulator does
//               not consume).
//
// The seed path is a pinned replica compiled into this benchmark: the
// netlist core, .bench reader and structural-lint rule loop exactly as they
// shipped before the million-gate-core PR. Both paths fold their netlist
// into a structural checksum (cells, kinds, names, fan-ins, output marks,
// LUT masks, topo order) that must match — the rewritten core must produce
// the identical netlist, not a similar one. Lint finding counts must match
// for the same reason.
//
// Timed rows run one untimed warm-up pass, then repeat until a minimum wall
// time. JSON goes to BENCH_netlist_perf.json (--out) for CI to archive:
//   {
//     "benchmark": "...", "cells": N, "edges": N, "luts": N,
//     "bench_bytes": N, "findings": N,
//     "checksum": "...", "seed_checksum": "...",
//     "load_lint_speedup": X.XX,
//     "phases": [
//       {"path": "seed"|"current", "phase": "...", "reps": N,
//        "seconds": S, "cells_per_sec": R}, ...   // S = fastest repetition
//     ]
//   }
//
// Acceptance gates:
//  * structural checksums and lint finding counts identical across paths
//    (always, including --smoke);
//  * end-to-end load+lint (parse + lint, per repetition) >= 5x the seed
//    path on the default ~1M-gate configuration. --smoke runs a small
//    circuit where fixed costs dominate and skips the throughput gate.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "graph/analysis.hpp"
#include "io/bench_io.hpp"
#include "sim/compiled.hpp"
#include "synth/generator.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "verify/structural.hpp"

namespace seedpath {

// ---------------------------------------------------------------------------
// Pinned seed-era netlist core: per-cell std::string names and heap vectors,
// unordered_map<std::string, CellId> name index, .at() bounds checks,
// allocating fanout rebuild and per-call topo scratch. Kept verbatim (minus
// members this benchmark does not exercise) as the baseline the JSON rows
// and the 5x gate are measured against.
// ---------------------------------------------------------------------------

using stt::CellId;
using stt::CellKind;
using stt::kNullCell;

struct SeedCell {
  CellKind kind = CellKind::kBuf;
  std::string name;
  std::vector<CellId> fanins;
  std::vector<CellId> fanouts;
  std::uint64_t lut_mask = 0;
  bool is_output = false;

  int fanin_count() const { return static_cast<int>(fanins.size()); }
};

class SeedNetlist {
 public:
  SeedNetlist() = default;
  explicit SeedNetlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  std::size_t size() const { return cells_.size(); }
  const SeedCell& cell(CellId id) const { return cells_.at(id); }
  SeedCell& cell(CellId id) { return cells_.at(id); }
  const std::vector<CellId>& outputs() const { return outputs_; }

  CellId add_cell(CellKind kind, std::string net_name) {
    const auto id = static_cast<CellId>(cells_.size());
    register_name(net_name, id);
    SeedCell c;
    c.kind = kind;
    c.name = std::move(net_name);
    cells_.push_back(std::move(c));
    if (kind == CellKind::kInput) inputs_.push_back(id);
    if (kind == CellKind::kDff) dffs_.push_back(id);
    return id;
  }

  CellId add_input(std::string net_name) {
    return add_cell(CellKind::kInput, std::move(net_name));
  }

  void connect(CellId cell_id, std::vector<CellId> fanins) {
    SeedCell& c = cells_.at(cell_id);
    for (const CellId old : c.fanins) {
      auto& outs = cells_.at(old).fanouts;
      const auto it = std::find(outs.begin(), outs.end(), cell_id);
      if (it != outs.end()) outs.erase(it);
    }
    c.fanins = std::move(fanins);
    for (const CellId driver : c.fanins) {
      if (driver == kNullCell) continue;
      cells_.at(driver).fanouts.push_back(cell_id);
    }
  }

  void mark_output(CellId cell_id) {
    SeedCell& c = cells_.at(cell_id);
    if (!c.is_output) {
      c.is_output = true;
      outputs_.push_back(cell_id);
    }
  }

  CellId find(std::string_view net_name) const {
    const auto it = by_name_.find(std::string(net_name));
    return it == by_name_.end() ? kNullCell : it->second;
  }

  void finalize() {
    rebuild_fanouts();
    check();
  }

  std::vector<CellId> topo_order() const {
    std::vector<std::uint32_t> pending(cells_.size(), 0);
    std::vector<CellId> order;
    order.reserve(cells_.size());
    std::vector<CellId> ready;
    for (CellId id = 0; id < cells_.size(); ++id) {
      const SeedCell& c = cells_[id];
      if (c.kind == CellKind::kInput || c.kind == CellKind::kDff ||
          c.fanins.empty()) {
        ready.push_back(id);
      } else {
        pending[id] = static_cast<std::uint32_t>(c.fanins.size());
      }
    }
    while (!ready.empty()) {
      const CellId id = ready.back();
      ready.pop_back();
      order.push_back(id);
      for (const CellId reader : cells_[id].fanouts) {
        if (cells_[reader].kind == CellKind::kDff) continue;
        if (--pending[reader] == 0) ready.push_back(reader);
      }
    }
    if (order.size() != cells_.size()) {
      throw std::runtime_error("netlist: combinational cycle detected in '" +
                               name_ + "'");
    }
    return order;
  }

  void check() const {
    if (by_name_.size() != cells_.size()) {
      throw std::runtime_error("netlist: name map out of sync");
    }
    for (CellId id = 0; id < cells_.size(); ++id) {
      const SeedCell& c = cells_[id];
      const auto range = fanin_range(c.kind);
      if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
        throw std::runtime_error("netlist: cell '" + c.name +
                                 "' has illegal fan-in count " +
                                 std::to_string(c.fanin_count()));
      }
      for (const CellId driver : c.fanins) {
        if (driver == kNullCell || driver >= cells_.size()) {
          throw std::runtime_error("netlist: cell '" + c.name +
                                   "' has a dangling fan-in");
        }
        const auto& outs = cells_[driver].fanouts;
        const auto expect = static_cast<std::size_t>(
            std::count(c.fanins.begin(), c.fanins.end(), driver));
        const auto have = static_cast<std::size_t>(
            std::count(outs.begin(), outs.end(), id));
        if (have != expect) {
          throw std::runtime_error("netlist: fanout list out of sync at '" +
                                   c.name + "'");
        }
      }
    }
    (void)topo_order();
  }

 private:
  void register_name(const std::string& net_name, CellId id) {
    if (net_name.empty()) throw std::runtime_error("netlist: empty net name");
    const auto [it, inserted] = by_name_.emplace(net_name, id);
    if (!inserted) {
      throw std::runtime_error("netlist: duplicate net name '" + net_name +
                               "'");
    }
  }

  void rebuild_fanouts() {
    for (SeedCell& c : cells_) c.fanouts.clear();
    for (CellId id = 0; id < cells_.size(); ++id) {
      for (const CellId driver : cells_[id].fanins) {
        if (driver == kNullCell) {
          throw std::runtime_error("netlist: unresolved fan-in on '" +
                                   cells_[id].name + "'");
        }
        cells_.at(driver).fanouts.push_back(id);
      }
    }
  }

  std::string name_;
  std::vector<SeedCell> cells_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::vector<CellId> dffs_;
  std::unordered_map<std::string, CellId> by_name_;
};

// Seed-era .bench reader: per-line string materialization, allocating
// split()/to_upper(), per-cell fan-in name vectors, unordered_set duplicate
// detection.
CellKind seed_parse_operator(std::string_view op, std::uint64_t& mask) {
  const std::string up = stt::to_upper(op);
  if (stt::starts_with(up, "LUT_")) {
    const std::string_view arg = std::string_view(up).substr(4);
    if (arg == "X") {
      mask = 0;
      return CellKind::kLut;
    }
    std::string_view digits = arg;
    if (stt::starts_with(digits, "0X")) digits = digits.substr(2);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value, 16);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      throw std::runtime_error("bad LUT mask '" + std::string(op) + "'");
    }
    mask = value;
    return CellKind::kLut;
  }
  const auto kind = stt::kind_from_name(up);
  if (!kind || *kind == CellKind::kInput) {
    throw std::runtime_error("unknown operator '" + std::string(op) + "'");
  }
  return *kind;
}

SeedNetlist seed_read_bench(std::string_view text, std::string name) {
  struct PendingCell {
    CellKind kind;
    std::string name;
    std::vector<std::string> fanin_names;
    std::uint64_t lut_mask = 0;
  };
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<PendingCell> pending;
  std::unordered_set<std::string> defined;

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;

    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = stt::trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      const std::size_t lp = line.find('(');
      const std::size_t rp = line.rfind(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos ||
          rp < lp) {
        throw std::runtime_error("malformed declaration");
      }
      const std::string keyword = stt::to_upper(stt::trim(line.substr(0, lp)));
      const std::string net(stt::trim(line.substr(lp + 1, rp - lp - 1)));
      if (net.empty()) throw std::runtime_error("empty net name");
      if (keyword == "INPUT") {
        if (!defined.insert(net).second) {
          throw std::runtime_error("net '" + net + "' defined twice");
        }
        input_names.push_back(net);
      } else if (keyword == "OUTPUT") {
        output_names.push_back(net);
      } else {
        throw std::runtime_error("unknown keyword '" + keyword + "'");
      }
      continue;
    }

    PendingCell cell;
    cell.name = std::string(stt::trim(line.substr(0, eq)));
    if (cell.name.empty()) throw std::runtime_error("empty cell name");
    const std::string_view rhs = stt::trim(line.substr(eq + 1));
    const std::size_t lp = rhs.find('(');
    const std::size_t rp = rhs.rfind(')');
    if (lp == std::string_view::npos || rp == std::string_view::npos ||
        rp < lp) {
      throw std::runtime_error("malformed cell definition");
    }
    cell.kind = seed_parse_operator(stt::trim(rhs.substr(0, lp)), cell.lut_mask);
    const std::string_view args = rhs.substr(lp + 1, rp - lp - 1);
    if (!stt::trim(args).empty()) {
      for (const auto& arg : stt::split(args, ',')) {
        const std::string net(stt::trim(arg));
        if (net.empty()) throw std::runtime_error("empty fan-in name");
        cell.fanin_names.push_back(net);
      }
    }
    if (!defined.insert(cell.name).second) {
      throw std::runtime_error("net '" + cell.name + "' defined twice");
    }
    pending.push_back(std::move(cell));
  }

  SeedNetlist nl(std::move(name));
  for (auto& in : input_names) nl.add_input(std::move(in));
  std::vector<CellId> ids;
  ids.reserve(pending.size());
  for (const auto& cell : pending) {
    const CellId id = nl.add_cell(cell.kind, cell.name);
    if (cell.kind == CellKind::kLut) {
      nl.cell(id).lut_mask =
          cell.lut_mask &
          stt::full_mask(static_cast<int>(cell.fanin_names.size()));
    }
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    std::vector<CellId> fanins;
    fanins.reserve(pending[i].fanin_names.size());
    for (const auto& net : pending[i].fanin_names) {
      const CellId driver = nl.find(net);
      if (driver == kNullCell) {
        throw std::runtime_error("undefined net '" + net + "'");
      }
      fanins.push_back(driver);
    }
    nl.connect(ids[i], std::move(fanins));
  }
  for (const auto& net : output_names) {
    const CellId id = nl.find(net);
    if (id == kNullCell) {
      throw std::runtime_error("OUTPUT references undefined net '" + net + "'");
    }
    nl.mark_output(id);
  }
  nl.finalize();
  return nl;
}

// Seed-era iterative Tarjan over a vector-of-vectors adjacency, pinned here
// because the library entry point now flattens to CSR — the baseline must
// keep the seed's memory behaviour.
std::vector<int> seed_tarjan_scc(
    const std::vector<std::vector<std::uint32_t>>& adj, int& num_components) {
  const auto n = adj.size();
  std::vector<int> comp(n, -1), low(n, 0), index(n, -1);
  std::vector<std::uint32_t> stack;
  std::vector<bool> on_stack(n, false);
  int next_index = 0;
  num_components = 0;

  struct Frame {
    std::uint32_t node;
    std::size_t edge;
  };
  std::vector<Frame> call;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      auto& [u, edge] = call.back();
      if (edge == 0) {
        index[u] = low[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      bool descended = false;
      while (edge < adj[u].size()) {
        const std::uint32_t v = adj[u][edge++];
        if (index[v] == -1) {
          call.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], index[v]);
      }
      if (descended) continue;
      if (low[u] == index[u]) {
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_components;
          if (w == u) break;
        }
        ++num_components;
      }
      const std::uint32_t finished = u;
      call.pop_back();
      if (!call.empty()) {
        const std::uint32_t parent = call.back().node;
        low[parent] = std::min(low[parent], low[finished]);
      }
    }
  }
  return comp;
}

// Seed-era structural lint rule loop over the replica core: the same rules,
// scan order and finding-message construction run_structural_lint applies
// (camouflage/defense-annotation blocks omitted — this benchmark passes no
// annotations, so both paths skip them identically).
struct SeedFinding {
  int rule = 0;
  CellId cell = kNullCell;
  std::string message;
};

std::vector<SeedFinding> seed_structural_lint(const SeedNetlist& nl) {
  using stt::strformat;
  std::vector<SeedFinding> findings;
  const auto valid_id = [&nl](CellId id) {
    return id != kNullCell && id < nl.size();
  };

  std::vector<std::uint32_t> readers(nl.size(), 0);
  for (CellId id = 0; id < nl.size(); ++id) {
    for (const CellId f : nl.cell(id).fanins) {
      if (valid_id(f)) ++readers[f];
    }
  }

  for (CellId id = 0; id < nl.size(); ++id) {
    const SeedCell& c = nl.cell(id);

    // STR002 — unresolved / out-of-range fan-in slots.
    for (std::size_t slot = 0; slot < c.fanins.size(); ++slot) {
      if (!valid_id(c.fanins[slot])) {
        findings.push_back(
            {2, id,
             strformat("fan-in slot %zu of '%s' references no cell", slot,
                       c.name.c_str())});
      }
    }

    // STR003 — arity outside the legal range for the kind.
    const stt::FaninRange range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      findings.push_back(
          {3, id,
           strformat("%s '%s' has %d fan-in(s); legal range is [%d, %d]",
                     std::string(kind_name(c.kind)).c_str(), c.name.c_str(),
                     c.fanin_count(), range.min, range.max)});
    }

    // STR004 — fanout lists out of sync with the fan-in edge set.
    for (const CellId f : c.fanins) {
      if (!valid_id(f)) continue;
      const auto& outs = nl.cell(f).fanouts;
      const auto expect = std::count(c.fanins.begin(), c.fanins.end(), f);
      const auto have = std::count(outs.begin(), outs.end(), id);
      if (have != expect) {
        findings.push_back(
            {4, id,
             strformat("'%s' reads '%s' %zd time(s) but appears %zd time(s) "
                       "in its fanout list",
                       c.name.c_str(), nl.cell(f).name.c_str(),
                       static_cast<std::ptrdiff_t>(expect),
                       static_cast<std::ptrdiff_t>(have))});
        break;
      }
    }

    // STR008 — duplicate driver across fan-in slots.
    if (c.fanin_count() >= 2) {
      std::vector<CellId> sorted(c.fanins);
      std::sort(sorted.begin(), sorted.end());
      const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
      if (dup != sorted.end() && valid_id(*dup)) {
        findings.push_back(
            {8, id,
             strformat("'%s' wires driver '%s' to multiple fan-in slots",
                       c.name.c_str(), nl.cell(*dup).name.c_str())});
      }
    }

    // STR009 — LUT mask bits beyond the truth table.
    if (c.kind == CellKind::kLut &&
        (c.lut_mask & ~stt::full_mask(c.fanin_count())) != 0) {
      findings.push_back(
          {9, id,
           strformat("LUT '%s' mask 0x%llx has bits beyond its %u rows",
                     c.name.c_str(),
                     static_cast<unsigned long long>(c.lut_mask),
                     stt::num_rows(c.fanin_count()))});
    }

    // HYB001 — one-input missing gate.
    if (c.kind == CellKind::kLut && c.fanin_count() == 1) {
      findings.push_back(
          {101, id,
           strformat("missing gate '%s' has one input; candidate set is only "
                     "BUF/NOT (P = 2)",
                     c.name.c_str())});
    }

    // STR007 — dead gate.
    const bool is_logic = is_combinational(c.kind) &&
                          c.kind != CellKind::kConst0 &&
                          c.kind != CellKind::kConst1;
    if (is_logic && readers[id] == 0 && !c.is_output) {
      const bool lut = c.kind == CellKind::kLut;
      findings.push_back(
          {7, id,
           lut ? strformat("missing gate '%s' drives nothing: it contributes "
                           "to M but hides no reachable logic",
                           c.name.c_str())
               : strformat("gate '%s' drives nothing and is not an output",
                           c.name.c_str())});
    }
  }

  // STR005 / STR006 — output sanity.
  if (nl.outputs().empty()) {
    findings.push_back(
        {5, kNullCell,
         "netlist declares no primary outputs; nothing is observable"});
  }
  for (const CellId id : nl.outputs()) {
    const CellKind kind = nl.cell(id).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      findings.push_back(
          {6, id,
           strformat("primary output '%s' is the constant %c",
                     nl.cell(id).name.c_str(),
                     kind == CellKind::kConst1 ? '1' : '0')});
    }
  }

  // STR001 — combinational SCC scan.
  {
    std::vector<std::vector<std::uint32_t>> adj(nl.size());
    for (CellId id = 0; id < nl.size(); ++id) {
      const SeedCell& c = nl.cell(id);
      if (c.kind == CellKind::kDff) continue;
      for (const CellId f : c.fanins) {
        if (valid_id(f)) adj[f].push_back(id);
      }
    }
    int num_components = 0;
    const std::vector<int> comp = seed_tarjan_scc(adj, num_components);
    std::vector<std::vector<CellId>> members(
        static_cast<std::size_t>(num_components));
    for (CellId id = 0; id < nl.size(); ++id) {
      members[static_cast<std::size_t>(comp[id])].push_back(id);
    }
    for (const auto& scc : members) {
      const bool self_loop =
          scc.size() == 1 &&
          std::find(adj[scc[0]].begin(), adj[scc[0]].end(), scc[0]) !=
              adj[scc[0]].end();
      if (scc.size() < 2 && !self_loop) continue;
      std::string names;
      for (std::size_t i = 0; i < scc.size() && i < 4; ++i) {
        if (i) names += " -> ";
        names += nl.cell(scc[i]).name;
      }
      if (scc.size() > 4) names += " -> ...";
      const CellId anchor = *std::min_element(scc.begin(), scc.end());
      findings.push_back(
          {1, anchor,
           strformat("combinational cycle through %zu cell(s): %s",
                     scc.size(), names.c_str())});
    }
  }

  return findings;
}

}  // namespace seedpath

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

struct Row {
  std::string path;
  std::string phase;
  int reps = 0;
  double seconds = 0;  ///< fastest timed repetition
};

// Structural digest over anything cell-shaped: cells in id order (kind, name
// bytes, fan-in ids, output mark, LUT mask), then the topological order. A
// single differing byte, edge or schedule slot anywhere changes the digest.
template <typename NetlistLike>
std::uint64_t structural_checksum(const NetlistLike& nl) {
  std::uint64_t acc = 0x5717c0deull;
  const auto fold = [&acc](std::uint64_t v) {
    acc = (acc ^ v) * 0x9e3779b97f4a7c15ull;
    acc ^= acc >> 29;
  };
  fold(nl.size());
  for (CellId id = 0; id < nl.size(); ++id) {
    const auto& c = nl.cell(id);
    fold(static_cast<std::uint64_t>(c.kind));
    std::uint64_t h = 1469598103934665603ull;
    for (const char ch : c.name) {
      h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
    }
    fold(h);
    for (const CellId f : c.fanins) fold(f);
    fold(c.is_output ? 1u : 0u);
    fold(c.lut_mask);
  }
  for (const CellId id : nl.topo_order()) fold(id);
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args;
  args.add_option("--benchmark",
                  "profile name, ISCAS'89 or ITC'99-class "
                  "(default b19_x4; b14 with --smoke)");
  args.add_option("--min-seconds", "minimum timed wall per phase row", "0.3");
  args.add_option("--out", "output JSON path", "BENCH_netlist_perf.json");
  args.add_flag("--smoke",
                "seconds-scale CI configuration (b14, throughput gate "
                "reported but not enforced)");
  try {
    args.parse({argv + 1, argv + argc});
  } catch (const ArgError& e) {
    std::fprintf(stderr, "bench_netlist_perf: %s\n%s", e.what(),
                 args.help().c_str());
    return 2;
  }

  const bool smoke = args.flag("--smoke");
  const std::string bench_name =
      args.get_or("--benchmark", smoke ? "b14" : "b19_x4");
  const auto profile = find_profile(bench_name);
  if (!profile) {
    std::fprintf(stderr, "bench_netlist_perf: unknown benchmark %s\n",
                 bench_name.c_str());
    return 2;
  }
  const double min_seconds = args.get_double("--min-seconds");

  // The shared input: one generated replica serialized to .bench text. Both
  // paths parse these exact bytes.
  std::string text;
  {
    const Netlist generated = generate_circuit(*profile, kSeed);
    text = write_bench(generated);
  }

  std::vector<Row> rows;
  // One untimed warm-up pass, then repeat until min_seconds of accumulated
  // wall time, with at least two timed repetitions; keeps the fastest
  // repetition. On a shared machine interference only ever adds time, so the
  // minimum is the low-noise estimator of the true cost — means drift with
  // whatever else the host is doing.
  const auto repeat = [&](const char* path, const char* phase,
                          const auto& pass) {
    pass();  // warm-up
    Row r{path, phase, 0, 0};
    double total = 0;
    do {
      Timer timer;
      pass();
      const double t = timer.seconds();
      total += t;
      if (r.reps == 0 || t < r.seconds) r.seconds = t;
      ++r.reps;
    } while (total < min_seconds || r.reps < 2);
    rows.push_back(r);
    return r.seconds;
  };

  // -- current path ---------------------------------------------------------
  Netlist cur = read_bench(text, profile->name);
  const std::size_t n_cells = cur.size();
  std::size_t n_edges = 0;
  for (CellId id = 0; id < cur.size(); ++id) {
    n_edges += cur.cell(id).fanins.size();
  }
  const std::size_t n_luts = cur.stats().luts;

  const double cur_parse = repeat("current", "parse", [&] {
    const Netlist nl = read_bench(text, profile->name);
    if (nl.size() != n_cells) throw std::runtime_error("cell count drift");
  });
  repeat("current", "finalize", [&] { cur.finalize(); });
  repeat("current", "topo", [&] { (void)cur.topo_order(); });
  StructuralLintResult cur_lint;
  const double cur_lint_s = repeat("current", "lint", [&] {
    cur_lint = run_structural_lint(cur);
  });
  repeat("current", "lower", [&] { const CompiledSim sim(cur); });
  const std::uint64_t cur_checksum = structural_checksum(cur);

  // -- seed replica path ----------------------------------------------------
  seedpath::SeedNetlist seed_nl =
      seedpath::seed_read_bench(text, profile->name);
  const double seed_parse = repeat("seed", "parse", [&] {
    const seedpath::SeedNetlist nl =
        seedpath::seed_read_bench(text, profile->name);
    if (nl.size() != n_cells) throw std::runtime_error("cell count drift");
  });
  repeat("seed", "finalize", [&] { seed_nl.finalize(); });
  repeat("seed", "topo", [&] { (void)seed_nl.topo_order(); });
  std::vector<seedpath::SeedFinding> seed_findings;
  const double seed_lint_s = repeat("seed", "lint", [&] {
    seed_findings = seedpath::seed_structural_lint(seed_nl);
  });
  const std::uint64_t seed_checksum = structural_checksum(seed_nl);

  // -- cross-checks ---------------------------------------------------------
  if (cur_checksum != seed_checksum) {
    std::fprintf(stderr,
                 "bench_netlist_perf: structural checksum mismatch "
                 "(%016llx current vs %016llx seed) — the rewritten core "
                 "does NOT reproduce the seed netlist\n",
                 static_cast<unsigned long long>(cur_checksum),
                 static_cast<unsigned long long>(seed_checksum));
    return 1;
  }
  if (cur_lint.findings.size() != seed_findings.size()) {
    std::fprintf(stderr,
                 "bench_netlist_perf: lint finding count mismatch "
                 "(%zu current vs %zu seed)\n",
                 cur_lint.findings.size(), seed_findings.size());
    return 1;
  }

  const double speedup =
      cur_parse + cur_lint_s > 0
          ? (seed_parse + seed_lint_s) / (cur_parse + cur_lint_s)
          : 0.0;

  std::string json = "{\n";
  json += "  \"benchmark\": \"" + profile->name + "\",\n";
  json += "  \"cells\": " + std::to_string(n_cells) + ",\n";
  json += "  \"edges\": " + std::to_string(n_edges) + ",\n";
  json += "  \"luts\": " + std::to_string(n_luts) + ",\n";
  json += "  \"bench_bytes\": " + std::to_string(text.size()) + ",\n";
  json += "  \"findings\": " + std::to_string(cur_lint.findings.size()) +
          ",\n";
  json += "  \"checksum\": \"" + std::to_string(cur_checksum) + "\",\n";
  json += "  \"seed_checksum\": \"" + std::to_string(seed_checksum) + "\",\n";
  json += strformat("  \"load_lint_speedup\": %.2f,\n", speedup);
  json += "  \"phases\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"path\": \"%s\", \"phase\": \"%s\", \"reps\": %d, "
                  "\"seconds\": %.6f, \"cells_per_sec\": %.1f}%s\n",
                  r.path.c_str(), r.phase.c_str(), r.reps, r.seconds,
                  r.seconds > 0 ? static_cast<double>(n_cells) / r.seconds : 0.0,
                  i + 1 < rows.size() ? "," : "");
    json += buf;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  const std::string out_path = args.get("--out");
  if (FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "bench_netlist_perf: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  // Throughput gate: end-to-end load+lint must beat the seed path 5x on the
  // default million-gate configuration. Small smoke circuits are dominated
  // by fixed costs, so --smoke reports the ratio without enforcing it.
  if (smoke) {
    std::fprintf(stderr,
                 "bench_netlist_perf: --smoke skips the 5x load+lint gate "
                 "(fixed-cost-dominated small circuit); measured %.2fx\n",
                 speedup);
  } else if (speedup < 5.0) {
    std::fprintf(stderr,
                 "bench_netlist_perf: load+lint speedup %.2fx below the 5x "
                 "gate\n",
                 speedup);
    return 1;
  }
  return 0;
}
