// Reproduces the paper's Table II: the CPU time (MM:SS.t) for selecting
// gates for replacement under the three selection algorithms, per ISCAS'89
// benchmark. The paper's machine was a 1.7 GHz Core i7; absolute numbers
// differ, the takeaway — selection stays within seconds even at ~20k gates —
// must hold.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/selection.hpp"
#include "runtime/job.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

unsigned bench_jobs() {
  if (const char* env = std::getenv("STT_BENCH_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return static_cast<unsigned>(n);
  }
  return 0;  // ThreadPool: hardware concurrency
}

void print_table2() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  TextTable table({"Circuit", "Independent", "Dependent", "Parametric",
                   "Ind ms", "Dep ms", "Par ms"});

  // Selection timings for the whole grid, measured inside campaign-engine
  // jobs (each timing comes from the selector's own monotonic timer, so
  // parallel execution perturbs only scheduling, not the measured span).
  const auto& profiles = iscas89_profiles();
  const SelectionAlgorithm algs[3] = {SelectionAlgorithm::kIndependent,
                                      SelectionAlgorithm::kDependent,
                                      SelectionAlgorithm::kParametric};
  std::vector<std::shared_ptr<const Netlist>> circuits(profiles.size());
  std::vector<std::array<double, 3>> seconds(profiles.size());

  ThreadPool pool(bench_jobs());
  JobGraph graph;
  for (std::size_t b = 0; b < profiles.size(); ++b) {
    const JobId gen = graph.add("gen/" + profiles[b].name,
                                [&circuits, &profiles, b](JobContext&) {
                                  circuits[b] = std::make_shared<const Netlist>(
                                      generate_circuit(profiles[b], kSeed));
                                });
    for (int a = 0; a < 3; ++a) {
      graph.add(
          "select/" + profiles[b].name + "/" + algorithm_name(algs[a]),
          [&circuits, &seconds, &selector, &algs, b, a](JobContext&) {
            Netlist work = *circuits[b];
            SelectionOptions opt;
            opt.seed = kSeed + static_cast<std::uint64_t>(a);
            seconds[b][a] = selector.run(work, algs[a], opt).selection_seconds;
          },
          {gen});
    }
  }
  graph.run(pool);

  for (std::size_t b = 0; b < profiles.size(); ++b) {
    std::string cells[3];
    std::string ms[3];
    for (int a = 0; a < 3; ++a) {
      cells[a] = Timer::format_mmss(seconds[b][a]);
      ms[a] = std::to_string(static_cast<long long>(seconds[b][a] * 1e3 + 0.5));
    }
    table.add_row({profiles[b].name, cells[0], cells[1], cells[2], ms[0],
                   ms[1], ms[2]});
  }
  std::printf(
      "Table II — The CPU time (MM:SS.t) for selecting gates for replacement\n"
      "in various selection algorithms.\n\n%s\n",
      table.render().c_str());
}

void bm_selection(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  const CircuitProfile& profile = iscas89_profiles()[state.range(0)];
  const auto alg = static_cast<SelectionAlgorithm>(state.range(1));
  const Netlist original = generate_circuit(profile, kSeed);
  SelectionOptions opt;
  opt.seed = kSeed;
  for (auto _ : state) {
    Netlist work = original;
    benchmark::DoNotOptimize(selector.run(work, alg, opt));
  }
  state.SetLabel(profile.name + "/" + algorithm_name(alg));
}

BENCHMARK(bm_selection)
    ->ArgsProduct({{0, 4, 7, 11}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
