// Reproduces the paper's Table II: the CPU time (MM:SS.t) for selecting
// gates for replacement under the three selection algorithms, per ISCAS'89
// benchmark. The paper's machine was a 1.7 GHz Core i7; absolute numbers
// differ, the takeaway — selection stays within seconds even at ~20k gates —
// must hold.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/selection.hpp"
#include "synth/generator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace stt;

constexpr std::uint64_t kSeed = 20160605;

void print_table2() {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  TextTable table({"Circuit", "Independent", "Dependent", "Parametric",
                   "Ind ms", "Dep ms", "Par ms"});

  for (const CircuitProfile& profile : iscas89_profiles()) {
    const Netlist original = generate_circuit(profile, kSeed);
    std::string cells[3];
    std::string ms[3];
    const SelectionAlgorithm algs[3] = {SelectionAlgorithm::kIndependent,
                                        SelectionAlgorithm::kDependent,
                                        SelectionAlgorithm::kParametric};
    for (int a = 0; a < 3; ++a) {
      Netlist work = original;
      SelectionOptions opt;
      opt.seed = kSeed + a;
      const auto result = selector.run(work, algs[a], opt);
      cells[a] = Timer::format_mmss(result.selection_seconds);
      ms[a] = std::to_string(
          static_cast<long long>(result.selection_seconds * 1e3 + 0.5));
    }
    table.add_row({profile.name, cells[0], cells[1], cells[2], ms[0], ms[1],
                   ms[2]});
  }
  std::printf(
      "Table II — The CPU time (MM:SS.t) for selecting gates for replacement\n"
      "in various selection algorithms.\n\n%s\n",
      table.render().c_str());
}

void bm_selection(benchmark::State& state) {
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const GateSelector selector(lib);
  const CircuitProfile& profile = iscas89_profiles()[state.range(0)];
  const auto alg = static_cast<SelectionAlgorithm>(state.range(1));
  const Netlist original = generate_circuit(profile, kSeed);
  SelectionOptions opt;
  opt.seed = kSeed;
  for (auto _ : state) {
    Netlist work = original;
    benchmark::DoNotOptimize(selector.run(work, alg, opt));
  }
  state.SetLabel(profile.name + "/" + algorithm_name(alg));
}

BENCHMARK(bm_selection)
    ->ArgsProduct({{0, 4, 7, 11}, {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
