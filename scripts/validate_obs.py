#!/usr/bin/env python3
"""Validate sttlock observability artifacts.

Checks that a Chrome trace JSON written by ``--trace`` is loadable by
chrome://tracing (structurally: a ``traceEvents`` list of complete "X"
events with the required keys) and that a metrics JSON written by
``--metrics`` has the counters/gauges/histograms shape.

Usage:
  scripts/validate_obs.py --trace trace.json [--require-cats job,flow-stage,...]
  scripts/validate_obs.py --metrics metrics.json [--require-counters a,b]

Exits non-zero with a diagnostic on the first violation. Stdlib only.
"""

import argparse
import json
import sys

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}


def fail(msg):
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate_trace(path, require_cats):
    doc = load_json(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top-level object must contain 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' must be a list")
    cats = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: event {i} is not an object")
        missing = TRACE_EVENT_KEYS - e.keys()
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} has ph={e['ph']!r}, expected complete"
                 " event 'X'")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e[key], int) or e[key] < 0:
                fail(f"{path}: event {i} field {key}={e[key]!r} must be a"
                     " non-negative integer")
        cats.add(e["cat"])
    for cat in require_cats:
        if cat not in cats:
            fail(f"{path}: required span category {cat!r} absent"
                 f" (present: {sorted(cats)})")
    print(f"validate_obs: OK: {path}: {len(events)} events,"
          f" categories {sorted(cats)}")


def validate_metrics(path, require_counters):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing or non-object section {section!r}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} must be a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, int):
            fail(f"{path}: gauge {name!r} must be an integer")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or not {"count", "sum"} <= h.keys():
            fail(f"{path}: histogram {name!r} must carry count and sum")
    for name in require_counters:
        if name not in doc["counters"]:
            fail(f"{path}: required counter {name!r} absent"
                 f" (present: {sorted(doc['counters'])})")
    print(f"validate_obs: OK: {path}: {len(doc['counters'])} counters,"
          f" {len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    ap.add_argument("--require-cats", default="",
                    help="comma-separated span categories that must appear")
    ap.add_argument("--require-counters", default="",
                    help="comma-separated counters that must appear")
    args = ap.parse_args()
    if not args.trace and not args.metrics:
        ap.error("at least one of --trace / --metrics is required")
    split = lambda s: [x for x in s.split(",") if x]  # noqa: E731
    if args.trace:
        validate_trace(args.trace, split(args.require_cats))
    if args.metrics:
        validate_metrics(args.metrics, split(args.require_counters))


if __name__ == "__main__":
    main()
