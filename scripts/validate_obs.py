#!/usr/bin/env python3
"""Validate sttlock observability artifacts.

Checks that a Chrome trace JSON written by ``--trace`` is loadable by
chrome://tracing (structurally: a ``traceEvents`` list of complete "X"
events with the required keys) and that a metrics JSON written by
``--metrics`` has the counters/gauges/histograms shape.

Also validates a campaign JSON document written by ``--out-json``: every
``results`` row must carry the defense axis columns (``defense``,
``defense_tuning``, ``key_cells``, ``key_bits``, ``cells_added``,
``cells_replaced``) and every ``summary`` entry the per-defense aggregate
shape.

Also validates a bench JSON document against its schema: ``--bench netlist``
checks the shape bench_netlist_perf writes (counts, matching structural
checksums, and the per-path/per-phase timing rows).

Usage:
  scripts/validate_obs.py --trace trace.json [--require-cats job,flow-stage,...]
  scripts/validate_obs.py --metrics metrics.json [--require-counters a,b]
  scripts/validate_obs.py --campaign campaign.json \\
      [--require-defenses xor,latch] [--require-attacks sat,none]
  scripts/validate_obs.py --bench netlist --bench-json BENCH_netlist_perf.json

Exits non-zero with a diagnostic on the first violation. Stdlib only.
"""

import argparse
import json
import sys

TRACE_EVENT_KEYS = {"name", "cat", "ph", "ts", "dur", "pid", "tid"}

CAMPAIGN_ROW_KEYS = {
    "benchmark", "algorithm", "defense", "defense_tuning", "trial",
    "circuit_seed", "selection_seed", "status", "attempts", "luts",
    "key_cells", "key_bits", "cells_added", "cells_replaced",
}
CAMPAIGN_ROW_COUNTS = ("key_cells", "key_bits", "cells_added",
                       "cells_replaced")
# Present only on rows whose lint stage ran (verify/keydep analysis).
CAMPAIGN_KEYDEP_KEYS = {"key_bits_static", "eff_key_bits", "analyze_verdict"}
CAMPAIGN_KEYDEP_COUNTS = ("key_bits_static", "eff_key_bits")
# "" marks a lint run whose keydep stage was skipped (no LUTs).
CAMPAIGN_ANALYZE_VERDICTS = {"", "empty", "broken", "degraded", "secure"}
CAMPAIGN_SUMMARY_KEYS = {
    "defense", "defense_tuning", "rows", "failed", "perf_pct_mean",
    "power_pct_mean", "area_pct_mean", "luts_mean", "key_bits_mean",
    "attacked", "attack_breaks",
}
# The "runtime" section (present in --out-json, absent from --stable-json)
# carries the resume/shard/dedup-cache accounting of the result store.
CAMPAIGN_RUNTIME_KEYS = {
    "threads", "wall_seconds", "job_cpu_seconds", "executed", "stolen",
    "failed_rows", "rows_resumed", "rows_executed", "shard_index",
    "shard_count", "cache_builds", "cache_reuses", "cache_saved_ms",
    "store_note", "obs",
}
CAMPAIGN_RUNTIME_COUNTS = ("rows_resumed", "rows_executed", "cache_builds",
                           "cache_reuses")


def fail(msg):
    print(f"validate_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")


def validate_trace(path, require_cats):
    doc = load_json(path)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top-level object must contain 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: 'traceEvents' must be a list")
    cats = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: event {i} is not an object")
        missing = TRACE_EVENT_KEYS - e.keys()
        if missing:
            fail(f"{path}: event {i} missing keys {sorted(missing)}")
        if e["ph"] != "X":
            fail(f"{path}: event {i} has ph={e['ph']!r}, expected complete"
                 " event 'X'")
        for key in ("ts", "dur", "pid", "tid"):
            if not isinstance(e[key], int) or e[key] < 0:
                fail(f"{path}: event {i} field {key}={e[key]!r} must be a"
                     " non-negative integer")
        cats.add(e["cat"])
    for cat in require_cats:
        if cat not in cats:
            fail(f"{path}: required span category {cat!r} absent"
                 f" (present: {sorted(cats)})")
    print(f"validate_obs: OK: {path}: {len(events)} events,"
          f" categories {sorted(cats)}")


def validate_metrics(path, require_counters):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    for section in ("counters", "gauges", "histograms"):
        if section not in doc or not isinstance(doc[section], dict):
            fail(f"{path}: missing or non-object section {section!r}")
    for name, value in doc["counters"].items():
        if not isinstance(value, int) or value < 0:
            fail(f"{path}: counter {name!r} must be a non-negative integer")
    for name, value in doc["gauges"].items():
        if not isinstance(value, int):
            fail(f"{path}: gauge {name!r} must be an integer")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict) or not {"count", "sum"} <= h.keys():
            fail(f"{path}: histogram {name!r} must carry count and sum")
    for name in require_counters:
        if name not in doc["counters"]:
            fail(f"{path}: required counter {name!r} absent"
                 f" (present: {sorted(doc['counters'])})")
    validate_sim_isa_counters(path, doc["counters"])
    print(f"validate_obs: OK: {path}: {len(doc['counters'])} counters,"
          f" {len(doc['gauges'])} gauges, {len(doc['histograms'])} histograms")


def validate_sim_isa_counters(path, counters):
    """Cross-check the simulation engine's per-ISA word attribution.

    ``sim.words`` counts true pattern words; ``sim.isa.<name>`` and
    ``sim.lane_words.<K>`` attribute those same words to the kernel that
    evaluated them, so each family must sum to exactly ``sim.words``.
    """
    if "sim.words" not in counters:
        return
    total = counters["sim.words"]
    for prefix in ("sim.isa.", "sim.lane_words."):
        family = {k: v for k, v in counters.items() if k.startswith(prefix)}
        if not family:
            fail(f"{path}: sim.words present but no {prefix}* counters")
        attributed = sum(family.values())
        if attributed != total:
            fail(f"{path}: {prefix}* counters sum to {attributed},"
                 f" expected sim.words={total} ({family})")
    known_isas = {"sim.isa.scalar", "sim.isa.avx2", "sim.isa.avx512"}
    unknown = {k for k in counters if k.startswith("sim.isa.")} - known_isas
    if unknown:
        fail(f"{path}: unknown sim.isa counters {sorted(unknown)}")


def validate_campaign(path, require_defenses, require_attacks):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    for section in ("results", "summary"):
        if section not in doc or not isinstance(doc[section], list):
            fail(f"{path}: missing or non-list section {section!r}")
    defenses, attacks = set(), set()
    for i, row in enumerate(doc["results"]):
        if not isinstance(row, dict):
            fail(f"{path}: results[{i}] is not an object")
        missing = CAMPAIGN_ROW_KEYS - row.keys()
        if missing:
            fail(f"{path}: results[{i}] missing keys {sorted(missing)}")
        for key in CAMPAIGN_ROW_COUNTS:
            if not isinstance(row[key], int) or row[key] < 0:
                fail(f"{path}: results[{i}] field {key}={row[key]!r} must be"
                     " a non-negative integer")
        if "lint" in row:
            missing = CAMPAIGN_KEYDEP_KEYS - row.keys()
            if missing:
                fail(f"{path}: results[{i}] ran lint but is missing keydep"
                     f" keys {sorted(missing)}")
            for key in CAMPAIGN_KEYDEP_COUNTS:
                if not isinstance(row[key], int) or row[key] < 0:
                    fail(f"{path}: results[{i}] field {key}={row[key]!r}"
                         " must be a non-negative integer")
            if row["eff_key_bits"] > row["key_bits"]:
                fail(f"{path}: results[{i}] eff_key_bits"
                     f" {row['eff_key_bits']} exceeds key_bits"
                     f" {row['key_bits']}")
            if row["analyze_verdict"] not in CAMPAIGN_ANALYZE_VERDICTS:
                fail(f"{path}: results[{i}] analyze_verdict"
                     f" {row['analyze_verdict']!r} not in"
                     f" {sorted(CAMPAIGN_ANALYZE_VERDICTS)}")
        if row["algorithm"] != row["defense"]:
            fail(f"{path}: results[{i}] legacy 'algorithm' column"
                 f" {row['algorithm']!r} != 'defense' {row['defense']!r}")
        defenses.add(row["defense"])
        # Rows without an attack stage carry no "attack" key.
        attacks.add(row.get("attack", "none"))
    for i, entry in enumerate(doc["summary"]):
        if not isinstance(entry, dict):
            fail(f"{path}: summary[{i}] is not an object")
        missing = CAMPAIGN_SUMMARY_KEYS - entry.keys()
        if missing:
            fail(f"{path}: summary[{i}] missing keys {sorted(missing)}")
    if "runtime" in doc:
        validate_campaign_runtime(path, doc["runtime"], len(doc["results"]))
    summarized = {e["defense"] for e in doc["summary"]}
    for kind in require_defenses:
        if kind not in defenses:
            fail(f"{path}: required defense {kind!r} absent from results"
                 f" (present: {sorted(defenses)})")
        if kind not in summarized:
            fail(f"{path}: required defense {kind!r} absent from summary"
                 f" (present: {sorted(summarized)})")
    for name in require_attacks:
        if name not in attacks:
            fail(f"{path}: required attack {name!r} absent from results"
                 f" (present: {sorted(attacks)})")
    print(f"validate_obs: OK: {path}: {len(doc['results'])} rows,"
          f" defenses {sorted(defenses)}, attacks {sorted(attacks)}")


def validate_campaign_runtime(path, rt, n_rows):
    if not isinstance(rt, dict):
        fail(f"{path}: 'runtime' must be an object")
    missing = CAMPAIGN_RUNTIME_KEYS - rt.keys()
    if missing:
        fail(f"{path}: runtime section missing keys {sorted(missing)}")
    for key in CAMPAIGN_RUNTIME_COUNTS:
        if not isinstance(rt[key], int) or rt[key] < 0:
            fail(f"{path}: runtime field {key}={rt[key]!r} must be a"
                 " non-negative integer")
    if not isinstance(rt["shard_index"], int) \
            or not isinstance(rt["shard_count"], int) \
            or not 1 <= rt["shard_index"] <= rt["shard_count"]:
        fail(f"{path}: runtime shard {rt['shard_index']!r}/"
             f"{rt['shard_count']!r} must satisfy 1 <= index <= count")
    # Every reported row was either replayed from the store or executed in
    # this process — the two counters partition the rows exactly.
    if rt["rows_resumed"] + rt["rows_executed"] != n_rows:
        fail(f"{path}: rows_resumed {rt['rows_resumed']} + rows_executed"
             f" {rt['rows_executed']} != {n_rows} result rows")
    if not isinstance(rt["cache_saved_ms"], (int, float)) \
            or rt["cache_saved_ms"] < 0:
        fail(f"{path}: runtime cache_saved_ms={rt['cache_saved_ms']!r} must"
             " be a non-negative number")
    if rt["cache_builds"] == 0 and rt["cache_reuses"] != 0:
        fail(f"{path}: runtime reports {rt['cache_reuses']} cache reuses"
             " with no cache builds")
    if not isinstance(rt["store_note"], str):
        fail(f"{path}: runtime store_note must be a string")
    # The same accounting flows through the runtime-tagged obs counters;
    # when present (enabled obs builds) they must agree with the fields.
    counters = rt["obs"].get("counters", {}) if isinstance(rt["obs"], dict) \
        else {}
    for counter, field in (("campaign.rows.resumed", "rows_resumed"),
                           ("campaign.rows.executed", "rows_executed"),
                           ("campaign.cache.builds", "cache_builds"),
                           ("campaign.cache.reuses", "cache_reuses")):
        if counter in counters and counters[counter] != rt[field]:
            fail(f"{path}: runtime obs counter {counter}="
                 f"{counters[counter]} disagrees with {field}={rt[field]}")


NETLIST_BENCH_KEYS = {
    "benchmark", "cells", "edges", "luts", "bench_bytes", "findings",
    "checksum", "seed_checksum", "load_lint_speedup", "phases",
}
NETLIST_BENCH_COUNTS = ("cells", "edges", "luts", "bench_bytes", "findings")
NETLIST_PHASE_KEYS = {"path", "phase", "reps", "seconds", "cells_per_sec"}
NETLIST_PATHS = {"current", "seed"}
# Every path must time at least these phases; "lower" runs on the current
# path only (the seed replica has no compiled-sim stage).
NETLIST_REQUIRED_PHASES = {"parse", "finalize", "topo", "lint"}


def validate_netlist_bench(path):
    doc = load_json(path)
    if not isinstance(doc, dict):
        fail(f"{path}: top-level value must be an object")
    missing = NETLIST_BENCH_KEYS - doc.keys()
    if missing:
        fail(f"{path}: missing keys {sorted(missing)}")
    for key in NETLIST_BENCH_COUNTS:
        if not isinstance(doc[key], int) or doc[key] < 0:
            fail(f"{path}: field {key}={doc[key]!r} must be a non-negative"
                 " integer")
    if doc["cells"] <= 0:
        fail(f"{path}: cells must be positive")
    # The bench refuses to emit JSON on a checksum mismatch, so a committed
    # artifact with differing checksums is corrupt by construction.
    if doc["checksum"] != doc["seed_checksum"]:
        fail(f"{path}: checksum {doc['checksum']!r} != seed_checksum"
             f" {doc['seed_checksum']!r}")
    if not isinstance(doc["load_lint_speedup"], (int, float)) \
            or doc["load_lint_speedup"] <= 0:
        fail(f"{path}: load_lint_speedup must be a positive number")
    if not isinstance(doc["phases"], list) or not doc["phases"]:
        fail(f"{path}: 'phases' must be a non-empty list")
    timed = {p: set() for p in NETLIST_PATHS}
    for i, row in enumerate(doc["phases"]):
        if not isinstance(row, dict):
            fail(f"{path}: phases[{i}] is not an object")
        missing = NETLIST_PHASE_KEYS - row.keys()
        if missing:
            fail(f"{path}: phases[{i}] missing keys {sorted(missing)}")
        if row["path"] not in NETLIST_PATHS:
            fail(f"{path}: phases[{i}] path {row['path']!r} not in"
                 f" {sorted(NETLIST_PATHS)}")
        if not isinstance(row["reps"], int) or row["reps"] < 2:
            fail(f"{path}: phases[{i}] reps={row['reps']!r} must be an"
                 " integer >= 2 (the bench always times at least two reps)")
        for key in ("seconds", "cells_per_sec"):
            if not isinstance(row[key], (int, float)) or row[key] < 0:
                fail(f"{path}: phases[{i}] field {key}={row[key]!r} must be"
                     " a non-negative number")
        timed[row["path"]].add(row["phase"])
    for p in NETLIST_PATHS:
        missing = NETLIST_REQUIRED_PHASES - timed[p]
        if missing:
            fail(f"{path}: path {p!r} missing timed phases"
                 f" {sorted(missing)}")
    print(f"validate_obs: OK: {path}: {doc['benchmark']} with"
          f" {doc['cells']} cells, {len(doc['phases'])} phase rows,"
          f" {doc['load_lint_speedup']}x load+lint speedup")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", help="Chrome trace JSON to validate")
    ap.add_argument("--metrics", help="metrics JSON to validate")
    ap.add_argument("--campaign", help="campaign --out-json document to"
                    " validate (defense axis columns)")
    ap.add_argument("--bench", choices=["netlist"],
                    help="bench JSON schema to validate (--bench-json)")
    ap.add_argument("--bench-json", default="BENCH_netlist_perf.json",
                    help="bench JSON path (default BENCH_netlist_perf.json)")
    ap.add_argument("--require-cats", default="",
                    help="comma-separated span categories that must appear")
    ap.add_argument("--require-counters", default="",
                    help="comma-separated counters that must appear")
    ap.add_argument("--require-defenses", default="",
                    help="comma-separated defense kinds that must appear in"
                    " campaign results and summary")
    ap.add_argument("--require-attacks", default="",
                    help="comma-separated attack names that must appear in"
                    " campaign results")
    args = ap.parse_args()
    if not args.trace and not args.metrics and not args.campaign \
            and not args.bench:
        ap.error("at least one of --trace / --metrics / --campaign /"
                 " --bench is required")
    split = lambda s: [x for x in s.split(",") if x]  # noqa: E731
    if args.trace:
        validate_trace(args.trace, split(args.require_cats))
    if args.metrics:
        validate_metrics(args.metrics, split(args.require_counters))
    if args.campaign:
        validate_campaign(args.campaign, split(args.require_defenses),
                          split(args.require_attacks))
    if args.bench == "netlist":
        validate_netlist_bench(args.bench_json)


if __name__ == "__main__":
    main()
